"""Interchangeable alpha-blending kernels.

Both renderers funnel every pixel they produce through one of these kernels:

* :func:`blend_reference` — the per-Gaussian reference loop (vectorised over
  the pixels of a tile, sequential over the depth-sorted Gaussian list), a
  direct transcription of the reference 3DGS blending recurrence;
* :func:`blend_vectorized` — a fully batched kernel that evaluates all
  (gaussian, pixel) powers in one broadcast and derives per-step
  transmittance with an exclusive cumulative product, reproducing the
  reference recurrence (including the early-termination gate) exactly;
* :func:`blend_streaming` — the same machinery exposed to the streaming
  per-voxel path: blends a whole tile's concatenated voxel stream in one
  call and additionally reports, per pixel, the stream position at which
  the pixel saturated, so the pipeline can reproduce the reference loop's
  voxel-granular early termination in its statistics.

Kernels share one signature::

    kernel(pixel_x, pixel_y, projected, sorted_indices, state,
           model_indices=None, track_depth_order=False) -> BlendState

``model_indices`` maps rows of ``projected`` to model Gaussian ids; the
streaming pipeline passes the surviving-voxel indices so per-Gaussian weight
attribution lands directly in the frame-level arrays bound into ``state``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.engine.state import BlendState
from repro.gaussians.projection import ProjectedGaussians

#: Alpha-blending terminates a pixel once its transmittance drops below this.
TRANSMITTANCE_EPSILON = 1e-4

#: Contributions with alpha below this are skipped (matches reference impl).
ALPHA_EPSILON = 1.0 / 255.0

#: Alpha is clamped to this maximum to keep blending stable.
ALPHA_MAX = 0.99

#: Depth slack below which an out-of-order contribution is not counted.
DEPTH_VIOLATION_EPSILON = 1e-9

#: Gaussians per broadcast batch of the vectorized kernel.  Bounds the
#: (gaussians x pixels) working set to a cache-resident block and sets the
#: granularity of the active-pixel compaction and early-termination checks.
VECTORIZED_CHUNK = 64

BlendKernel = Callable[..., BlendState]


def _tracking_size(
    projected: ProjectedGaussians, model_indices: Optional[np.ndarray]
) -> int:
    if model_indices is None:
        return len(projected)
    return int(np.max(model_indices)) + 1 if len(model_indices) else 0


def blend_reference(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    state: BlendState,
    model_indices: Optional[np.ndarray] = None,
    track_depth_order: bool = False,
) -> BlendState:
    """Per-Gaussian reference blending loop (front to back)."""
    if track_depth_order:
        state.ensure_weight_arrays(_tracking_size(projected, model_indices))
    px = pixel_x.astype(np.float64) + 0.5
    py = pixel_y.astype(np.float64) + 0.5
    for gid in sorted_indices:
        if not projected.valid[gid]:
            continue
        active = state.transmittance > TRANSMITTANCE_EPSILON
        if not np.any(active):
            break
        dx = px - projected.means2d[gid, 0]
        dy = py - projected.means2d[gid, 1]
        a, b, c = projected.conics[gid]
        power = -0.5 * (a * dx * dx + c * dy * dy) - b * dx * dy
        alpha = projected.opacities[gid] * np.exp(np.minimum(power, 0.0))
        alpha = np.minimum(alpha, ALPHA_MAX)
        contributes = active & (alpha > ALPHA_EPSILON) & (power <= 0.0)
        if not np.any(contributes):
            continue
        weight = np.where(contributes, alpha * state.transmittance, 0.0)
        state.color += weight[:, None] * projected.colors[gid][None, :]
        state.transmittance = np.where(
            contributes, state.transmittance * (1.0 - alpha), state.transmittance
        )
        state.blended_fragments += int(np.count_nonzero(contributes))
        if track_depth_order:
            depth = float(projected.depths[gid])
            violated = contributes & (
                state.max_depth > depth + DEPTH_VIOLATION_EPSILON
            )
            state.depth_violations += int(np.count_nonzero(violated))
            key = int(gid) if model_indices is None else int(model_indices[gid])
            state.gaussian_weights[key] += float(weight.sum())
            if np.any(violated):
                state.gaussian_violation_weights[key] += float(weight[violated].sum())
            state.max_depth = np.where(
                contributes, np.maximum(state.max_depth, depth), state.max_depth
            )
    return state


def blend_vectorized(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    state: BlendState,
    model_indices: Optional[np.ndarray] = None,
    track_depth_order: bool = False,
) -> BlendState:
    """Broadcast-batched blending kernel.

    For a batch of Gaussians the kernel evaluates the full (gaussian, pixel)
    power matrix at once and recovers the sequential transmittance
    recurrence through one exclusive cumulative product along the Gaussian
    axis, seeded with the incoming per-pixel transmittance.  The recurrence
    is reproduced *bit for bit*:

    * non-contributing Gaussians (tiny alpha, positive power) have their
      blending factor replaced by exactly 1.0, so the sequential product is
      unchanged by them;
    * the early-termination gate (``T > epsilon``) evaluates identically on
      the ungated product because transmittance is non-increasing: past the
      first saturation crossing both the gated and ungated products sit at
      or below the threshold;
    * the post-batch transmittance is the running product just after the
      last contributing Gaussian (recovered as a masked minimum, since the
      product is non-increasing), where gated and ungated products agree.

    Depth-order tracking uses an exclusive running maximum of contributing
    depths along the same axis.
    """
    state, _ = _blend_batched(
        pixel_x,
        pixel_y,
        projected,
        sorted_indices,
        state,
        model_indices=model_indices,
        track_depth_order=track_depth_order,
    )
    return state


def blend_streaming(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    state: BlendState,
    model_indices: Optional[np.ndarray] = None,
    track_depth_order: bool = False,
) -> "Tuple[BlendState, np.ndarray]":
    """Streaming-order blend: the vectorized kernel plus saturation steps.

    Blends exactly like :func:`blend_vectorized` (same chunks, same
    cumulative products, bit-identical state) and additionally returns, per
    pixel, the position in ``sorted_indices`` of the Gaussian whose blend
    saturated that pixel (transmittance fell to or below
    :data:`TRANSMITTANCE_EPSILON`), or ``len(sorted_indices)`` when the
    pixel never saturated.  The streaming per-voxel path uses the maximum
    over pixels to reproduce the reference loop's voxel-granular early
    termination in its statistics without blending voxel by voxel.
    """
    return _blend_batched(
        pixel_x,
        pixel_y,
        projected,
        sorted_indices,
        state,
        model_indices=model_indices,
        track_depth_order=track_depth_order,
        record_saturation=True,
    )


def _blend_batched(
    pixel_x: np.ndarray,
    pixel_y: np.ndarray,
    projected: ProjectedGaussians,
    sorted_indices: np.ndarray,
    state: BlendState,
    model_indices: Optional[np.ndarray] = None,
    track_depth_order: bool = False,
    record_saturation: bool = False,
) -> "Tuple[BlendState, Optional[np.ndarray]]":
    """Shared chunked broadcast machinery of the vectorized kernels."""
    if track_depth_order:
        state.ensure_weight_arrays(_tracking_size(projected, model_indices))
    sorted_indices = np.asarray(sorted_indices, dtype=np.int64)
    valid_positions = np.flatnonzero(projected.valid[sorted_indices])
    sel = sorted_indices[valid_positions]
    num_pixels = len(pixel_x)
    saturation: Optional[np.ndarray] = None
    if record_saturation:
        saturation = np.full(num_pixels, len(sorted_indices), dtype=np.int64)
    if len(sel) == 0:
        return state, saturation
    px = pixel_x.astype(np.float64) + 0.5
    py = pixel_y.astype(np.float64) + 0.5

    for start in range(0, len(sel), VECTORIZED_CHUNK):
        # Active-pixel compaction: transmittance is non-increasing, so
        # saturated pixels can never contribute again and their columns are
        # dropped from the broadcast batch entirely (the reference loop can
        # only mask them, not skip their arithmetic).
        active = np.flatnonzero(state.transmittance > TRANSMITTANCE_EPSILON)
        if len(active) == 0:
            break
        compact = len(active) < num_pixels
        if compact:
            apx, apy = px[active], py[active]
            transmittance_in = state.transmittance[active]
        else:
            apx, apy = px, py
            transmittance_in = state.transmittance
        chunk = sel[start : start + VECTORIZED_CHUNK]

        dx = apx[None, :] - projected.means2d[chunk, 0][:, None]      # (G, A)
        dy = apy[None, :] - projected.means2d[chunk, 1][:, None]
        conics = projected.conics[chunk]
        power = conics[:, 0][:, None] * (dx * dx)
        power += conics[:, 2][:, None] * (dy * dy)
        power *= -0.5
        dx *= dy
        dx *= conics[:, 1][:, None]
        power -= dx

        opacities = projected.opacities[chunk][:, None]
        positive = power > 0.0
        np.minimum(power, 0.0, out=power)
        a = np.exp(power, out=power)                                  # reuse buffer
        a *= opacities
        np.minimum(a, ALPHA_MAX, out=a)
        a[positive] = 0.0
        a[a <= ALPHA_EPSILON] = 0.0

        # Sequential transmittance: running[k] is the transmittance Gaussian
        # k observes; scaling the first factor by the incoming state keeps
        # the multiplication order of the reference loop.
        factors = 1.0 - a
        factors[0] *= transmittance_in
        running = np.empty((len(chunk) + 1, len(transmittance_in)), dtype=np.float64)
        running[0] = transmittance_in
        np.cumprod(factors, axis=0, out=running[1:])
        contributes = (a > 0.0) & (running[:-1] > TRANSMITTANCE_EPSILON)

        weight = np.where(contributes, a * running[:-1], 0.0)         # (G, A)

        color_delta = np.einsum("gp,gc->pc", weight, projected.colors[chunk])
        if compact:
            state.color[active] += color_delta
        else:
            state.color += color_delta
        state.blended_fragments += int(np.count_nonzero(contributes))

        if track_depth_order:
            depths = projected.depths[chunk].astype(np.float64)
            max_depth_in = state.max_depth[active] if compact else state.max_depth
            contributed_depth = np.where(contributes, depths[:, None], -np.inf)
            # Exclusive running max of contributing depths, seeded by state.
            prior_max = np.maximum.accumulate(
                np.vstack([max_depth_in[None, :], contributed_depth]), axis=0
            )
            violated = contributes & (
                prior_max[:-1] > depths[:, None] + DEPTH_VIOLATION_EPSILON
            )
            state.depth_violations += int(np.count_nonzero(violated))
            keys = chunk if model_indices is None else model_indices[chunk]
            np.add.at(state.gaussian_weights, keys, weight.sum(axis=1))
            np.add.at(
                state.gaussian_violation_weights,
                keys,
                np.where(violated, weight, 0.0).sum(axis=1),
            )
            if compact:
                state.max_depth[active] = prior_max[-1]
            else:
                state.max_depth = prior_max[-1]

        if record_saturation:
            # Pixels enter a chunk active (T > epsilon), so the first chunk
            # row whose running product crosses the threshold is the global
            # first crossing — and up to that crossing the ungated product
            # equals the reference transmittance bit for bit.
            saturated = running[1:] <= TRANSMITTANCE_EPSILON
            any_saturated = np.any(saturated, axis=0)
            if np.any(any_saturated):
                first_row = np.argmax(saturated, axis=0)
                hit_pixels = (active if compact else np.arange(num_pixels))[
                    any_saturated
                ]
                saturation[hit_pixels] = valid_positions[
                    start + first_row[any_saturated]
                ]

        # Transmittance after the last contributing Gaussian: the running
        # product only decreases on contributing steps, so the masked
        # minimum recovers it; pixels without contributions keep their
        # incoming value.
        after = np.min(
            np.where(contributes, running[1:], np.inf), axis=0, initial=np.inf
        )
        transmittance_out = np.where(np.isfinite(after), after, transmittance_in)
        if compact:
            state.transmittance[active] = transmittance_out
        else:
            state.transmittance = transmittance_out
    return state, saturation


#: Registry of the interchangeable blending kernels.
KERNELS = {
    "reference": blend_reference,
    "vectorized": blend_vectorized,
}

#: Kernel used when no explicit selection is made.
DEFAULT_KERNEL = "vectorized"


def available_kernels() -> tuple:
    """Names of the registered blending kernels."""
    return tuple(KERNELS)


def get_kernel(name: Optional[str] = None) -> BlendKernel:
    """Resolve a kernel name (``None`` means the default) to its callable."""
    key = name or DEFAULT_KERNEL
    if key not in KERNELS:
        raise KeyError(
            f"unknown blending kernel {key!r}; available: {sorted(KERNELS)}"
        )
    return KERNELS[key]
