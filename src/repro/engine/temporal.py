"""Temporal-coherence carry path for trajectory workloads.

Consecutive frames of a camera trajectory see nearly the same scene, so a
large part of per-frame work repeats verbatim: the per-tile voxel orders
change slowly, and the candidate sets behind them (which Gaussians live in
which streamed voxel) do not depend on the pose at all.  The carry path
(``StreamingConfig.temporal_mode = "carry"``) exploits this under one hard
rule: **every reuse is exact by construction**.  Nothing is approximated or
skipped — carried state is only used when its content key proves it equals
what a cold frame would recompute, so images stay within 1e-9 of
``temporal_mode="off"`` and :class:`~repro.core.pipeline.StreamingStats`
stay exactly equal.

Three mechanisms, in decreasing order of certainty:

* **candidate-gather carry** — the per-tile concatenation of each streamed
  voxel's Gaussian ids depends only on the (static) voxel grid and the
  tile's voxel order; a cache keyed by the order's bytes replays it without
  touching the CSR lists.  ``carried_voxels`` / ``revalidated`` /
  ``coherence_hit_rate`` in the frame telemetry report the hit rate.
* **topological-order carry** — Kahn's algorithm over the per-ray DAG is
  driven entirely by the adjacency (a function of the per-ray voxel orders)
  and the *rank order* of the ``(depth priority, node)`` keys, never their
  values — every heap comparison and the value-deterministic cycle-victim
  choice reduce to that total order.  When a tile's per-ray orders repeat
  and the key ranks are an exact permutation match, the cached
  :class:`VoxelOrderResult` is the one Kahn would recompute, heap step for
  heap step.
* **frame-restructured execution** — instead of filtering and blending
  tile by tile, the carry renderer projects the whole frame's coarse
  candidates once, fine-projects the union of every tile's coarse
  survivors once, and blends all tiles' pixel columns through one
  cross-tile chunk loop.  The blend recurrence is invariant to how the
  stream is chunked (non-contributing factors are exactly 1.0, so the
  sequential transmittance product, the contribution gates, the saturation
  positions and every integer counter are bit-identical under any
  partition); only the floating-point *accumulation* order of colours and
  per-Gaussian weights differs, which the 1e-9 tolerances cover — the same
  contract the off path's thread-parallel tile merge already relies on.

Teleports (pose jumps beyond :data:`TELEPORT_ROTATION_DEG` /
:data:`TELEPORT_TRANSLATION_FRACTION` of the scene diagonal) reset the
carried state and render a cold frame; the telemetry records it.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.hierarchical_filter import (
    COARSE_FILTER_MACS,
    FINE_FILTER_MACS,
    FilterStats,
    _overlaps_tile,
)
from repro.core.ray_voxel import VoxelOrderingTable, ordering_tables_for_tiles
from repro.core.voxel_order import (
    VoxelOrderResult,
    topological_voxel_order,
    voxel_depth_values,
)
from repro.engine.cache import FramePreparation, frame_key
from repro.engine.kernels import (
    ALPHA_EPSILON,
    ALPHA_MAX,
    DEPTH_VIOLATION_EPSILON,
    TRANSMITTANCE_EPSILON,
)
from repro.gaussians.camera import Camera, pose_delta
from repro.gaussians.projection import coarse_project_centers, project_gaussians
from repro.gaussians.tiles import TileGrid

#: Gaussians per broadcast chunk of the cross-tile carry blend.
#: Chunk-partition invariance of the blend recurrence makes the size a pure
#: performance knob: smaller chunks bound the padding waste of tiles whose
#: streams end mid-chunk and refresh the active-column compaction more
#: often, at the price of more chunk iterations.
CARRY_CHUNK = 32

#: Element budget (chunk rows x active columns) used to grow chunks as
#: pixel columns saturate and drop out of the active set.
CARRY_CHUNK_ELEMS = CARRY_CHUNK * 2048

#: Pixel columns per blend block.  The cross-tile blend walks whole tiles
#: grouped into blocks of at most this many columns, so every chunk
#: temporary stays ~``CARRY_CHUNK_ELEMS`` elements (cache-resident) even on
#: full-resolution frames; per-column independence of the blend recurrence
#: makes the column partition, like the chunk partition, a pure
#: performance knob.
CARRY_COL_BLOCK = 4096

#: Rotation (degrees) beyond which a pose jump counts as a teleport.
TELEPORT_ROTATION_DEG = 15.0

#: Translation, as a fraction of the scene diagonal, beyond which a pose
#: jump counts as a teleport.
TELEPORT_TRANSLATION_FRACTION = 0.10

#: Entries kept in the content-keyed candidate-gather cache.
GATHER_CACHE_CAPACITY = 4096

#: Entries kept in the topological-order carry cache.
ORDER_CACHE_CAPACITY = 1024


class TemporalContext:
    """Carried state and content-keyed caches of one renderer's trajectory.

    Thread-safe (renderers are shared across the service daemon's worker
    actors); picklable (renderers travel inside broadcast scene contexts) —
    the lock is rebuilt on unpickling, the carried caches travel along.
    """

    def __init__(
        self,
        gather_capacity: int = GATHER_CACHE_CAPACITY,
        order_capacity: int = ORDER_CACHE_CAPACITY,
    ) -> None:
        self.gather_capacity = gather_capacity
        self.order_capacity = order_capacity
        self._gather: "OrderedDict[bytes, Tuple[np.ndarray, np.ndarray, np.ndarray]]" = (
            OrderedDict()
        )
        self._orders: "OrderedDict[tuple, VoxelOrderResult]" = OrderedDict()
        self._last_camera: Optional[Camera] = None
        self.frames = 0
        self.cold_frames = 0
        self.teleports = 0
        self.carried_voxels = 0
        self.revalidated_voxels = 0
        self.orders_carried = 0
        self.orders_computed = 0
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, object]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop every carried entry (counters are kept)."""
        with self._lock:
            self._gather.clear()
            self._orders.clear()

    def observe(self, camera: Camera, scene_diagonal: float) -> bool:
        """Record a new frame's pose; True when the frame must run cold.

        The first frame of a trajectory and any teleport (pose delta beyond
        the thresholds) are cold: carried state is dropped so the frame
        reuses nothing.  The caches are content-keyed, so this is a policy
        decision (bound staleness, make the fallback observable), not a
        correctness requirement.
        """
        with self._lock:
            self.frames += 1
            previous = self._last_camera
            self._last_camera = camera
        if previous is None:
            self.cold_frames += 1
            return True
        rotation_deg, translation = pose_delta(previous, camera)
        if (
            rotation_deg > TELEPORT_ROTATION_DEG
            or translation > TELEPORT_TRANSLATION_FRACTION * scene_diagonal
        ):
            self.reset()
            self.cold_frames += 1
            self.teleports += 1
            return True
        return False

    # ------------------------------------------------------------------
    def gather_candidates(
        self, grid, order: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, bool]:
        """Per-voxel counts, concatenated candidates and segment ids of a tile.

        Content-keyed by the voxel order itself: the gather depends only on
        the static CSR grid, so a cache hit replays exactly what the off
        path's per-voxel ``gaussians_in_voxel`` loop would concatenate.
        """
        key = order.tobytes()
        with self._lock:
            entry = self._gather.get(key)
            if entry is not None:
                self._gather.move_to_end(key)
                self.carried_voxels += len(order)
                return entry + (True,)
        counts = grid.voxel_counts[order].astype(np.int64)
        starts = grid.voxel_starts[order]
        total = int(counts.sum())
        offsets = np.repeat(np.cumsum(counts) - counts, counts)
        flat = np.repeat(starts, counts) + np.arange(total, dtype=np.int64) - offsets
        candidates = grid.gaussian_order[flat].astype(np.int64)
        segments = np.repeat(np.arange(len(order), dtype=np.int64), counts)
        entry = (counts, candidates, segments)
        with self._lock:
            self.revalidated_voxels += len(order)
            self._gather[key] = entry
            self._gather.move_to_end(key)
            while len(self._gather) > self.gather_capacity:
                self._gather.popitem(last=False)
        return entry + (False,)

    # ------------------------------------------------------------------
    @staticmethod
    def _order_key(
        table: VoxelOrderingTable, depth_values: np.ndarray
    ) -> Optional[tuple]:
        """Content key of one tile's topological sort.

        Kahn's execution over a fixed adjacency is determined by the strict
        total order on ``(priority(node), node)`` — every heap comparison
        and the (value-deterministic) cycle-victim choice reduce to it — so
        the key is the per-ray orders plus the rank permutation of the
        involved nodes under that order.  Two frames with the same key have
        order-isomorphic priority assignments and produce the identical
        global voxel order.
        """
        arrays = [np.asarray(order, dtype=np.int64) for order in table.per_ray_orders]
        orders_key = tuple(order.tobytes() for order in arrays)
        nodes = np.unique(np.concatenate(arrays))
        ranked = np.lexsort((nodes, depth_values[nodes]))
        return (orders_key, ranked.tobytes())

    def topological_order(
        self, table: VoxelOrderingTable, depth_values: np.ndarray
    ) -> Tuple[VoxelOrderResult, bool]:
        """The tile's global voxel order, carried when its content key repeats."""
        key = self._order_key(table, depth_values) if table.per_ray_orders else None
        if key is not None:
            with self._lock:
                cached = self._orders.get(key)
                if cached is not None:
                    self._orders.move_to_end(key)
                    self.orders_carried += 1
                    return cached, True
        result = topological_voxel_order(
            table.per_ray_orders, voxel_depths=depth_values
        )
        with self._lock:
            self.orders_computed += 1
            if key is not None:
                self._orders[key] = result
                self._orders.move_to_end(key)
                while len(self._orders) > self.order_capacity:
                    self._orders.popitem(last=False)
        return result, False

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Lifetime counters (exported through the render service's stats)."""
        with self._lock:
            reused = self.carried_voxels
            total = reused + self.revalidated_voxels
            return {
                "frames": self.frames,
                "cold_frames": self.cold_frames,
                "teleports": self.teleports,
                "carried_voxels": reused,
                "revalidated_voxels": self.revalidated_voxels,
                "coherence_hit_rate": reused / total if total else 0.0,
                "orders_carried": self.orders_carried,
                "orders_computed": self.orders_computed,
            }


# ----------------------------------------------------------------------
@dataclass
class _TileWork:
    """Per-tile intermediate state of one carry frame."""

    tile_id: int
    bounds: Tuple[int, int, int, int]
    order: np.ndarray          # (V,) streamed voxel ids
    counts: np.ndarray         # (V,) Gaussians per voxel
    candidates: np.ndarray     # (C,) concatenated candidate model ids
    segments: np.ndarray       # (C,) voxel position per candidate
    col_start: int = 0         # first pixel column in the stacked frame
    num_pixels: int = 0
    coarse_tested: np.ndarray = field(default=None)
    coarse_passed: np.ndarray = field(default=None)
    fine_candidates: np.ndarray = field(default=None)
    fine_segments: np.ndarray = field(default=None)
    fine_tested: np.ndarray = field(default=None)
    fine_passed: np.ndarray = field(default=None)
    stream_rows: np.ndarray = field(default=None)   # rows into the union projection
    stream_model: np.ndarray = field(default=None)  # model ids, blend order

    @property
    def stream_len(self) -> int:
        return len(self.stream_rows)


def prepare_frame_carry(renderer, ctx: TemporalContext, camera: Camera):
    """Frame preparation with topological-order carry.

    Identical to :meth:`StreamingRenderer.prepare_frame` (same frame-cache
    key, same traversal, same depth map) except that each tile's
    topological sort goes through the context's content-keyed carry.
    Returns ``(preparation, info)`` where ``info`` reports the reuse.
    """
    config = renderer.config
    key = frame_key(
        camera,
        tile_size=config.tile_size,
        ray_stride=config.ray_stride,
        max_voxels_per_ray=config.max_voxels_per_ray,
    )
    cached = renderer.frame_cache.get(key)
    if cached is not None:
        return cached, {"frame_prepared": "cache"}
    tile_grid = TileGrid(camera.width, camera.height, config.tile_size)
    depth_map = voxel_depth_values(renderer.grid, camera)
    tile_bounds = {
        tile_id: tile_grid.tile_pixel_bounds(tile_id)
        for tile_id in range(tile_grid.num_tiles)
    }
    tables = ordering_tables_for_tiles(
        renderer.grid,
        camera,
        tile_bounds,
        ray_stride=config.ray_stride,
        max_voxels_per_ray=config.max_voxels_per_ray,
    )
    orders: Dict[int, VoxelOrderResult] = {}
    carried = computed = 0
    for tile_id, table in tables.items():
        result, hit = ctx.topological_order(table, depth_map)
        orders[tile_id] = result
        if hit:
            carried += 1
        else:
            computed += 1
    preparation = FramePreparation(
        depth_map=depth_map, tile_tables=tables, tile_orders=orders
    )
    renderer.frame_cache.put(key, preparation)
    return preparation, {
        "frame_prepared": "carry",
        "orders_carried": carried,
        "orders_computed": computed,
    }


def _prefix_filter_stats(tile: _TileWork, num_voxels: int) -> FilterStats:
    """Accumulated filter stats of a tile's first ``num_voxels`` voxels.

    Field for field the formulas of
    :meth:`repro.core.hierarchical_filter.BatchedFilterResult.prefix_stats`.
    """
    k = num_voxels
    coarse_tested = int(tile.coarse_tested[:k].sum())
    fine_tested = int(tile.fine_tested[:k].sum())
    return FilterStats(
        gaussians_in=int(tile.counts[:k].sum()),
        coarse_tested=coarse_tested,
        coarse_passed=int(tile.coarse_passed[:k].sum()),
        fine_tested=fine_tested,
        fine_passed=int(tile.fine_passed[:k].sum()),
        coarse_macs=COARSE_FILTER_MACS * coarse_tested,
        fine_macs=FINE_FILTER_MACS * fine_tested,
    )


def render_frame_carry(
    renderer,
    camera: Camera,
    image: np.ndarray,
    alpha_img: np.ndarray,
    stats,
) -> Dict[str, object]:
    """Render one frame through the temporal-coherence carry path.

    Produces the image within 1e-9 and the statistics exactly equal to the
    off path's serial vectorized render; returns the telemetry dict
    (including the ``carried_voxels`` / ``revalidated`` /
    ``coherence_hit_rate`` counters of this frame).
    """
    ctx = renderer.temporal
    config = renderer.config
    grid = renderer.grid
    model = renderer.render_model
    background = renderer.background
    use_coarse = config.use_coarse_filter

    scene_diagonal = float(np.linalg.norm(grid.dims * grid.voxel_size))
    cold_frame = ctx.observe(camera, scene_diagonal)
    preparation, prep_info = prepare_frame_carry(renderer, ctx, camera)
    tile_grid = TileGrid(camera.width, camera.height, config.tile_size)

    # --- Phase 1: header accounting + carried candidate gathers ----------
    tiles: List[_TileWork] = []
    carried = revalidated = 0
    for tile_id in range(tile_grid.num_tiles):
        bounds = tile_grid.tile_pixel_bounds(tile_id)
        order = renderer._tile_header_stats(tile_id, bounds, preparation, image, stats)
        if order is None:
            continue
        order = np.asarray(order, dtype=np.int64)
        counts, candidates, segments, hit = ctx.gather_candidates(grid, order)
        if hit:
            carried += len(order)
        else:
            revalidated += len(order)
        tiles.append(
            _TileWork(
                tile_id=tile_id,
                bounds=bounds,
                order=order,
                counts=counts,
                candidates=candidates,
                segments=segments,
            )
        )

    # --- Phase 2: whole-frame coarse filter, union fine projection -------
    # One coarse projection over the full model replaces every tile's
    # per-candidate call; the AABB tests gather its rows.  Both projections
    # are row-independent, so the gathered rows match the off path's
    # per-tile batches (the same property the batched tile filter already
    # relies on against the serial per-voxel loop).
    if use_coarse and tiles:
        coarse_means, coarse_depths, coarse_radii = coarse_project_centers(
            model.positions, model.max_scales, camera
        )
    for tile in tiles:
        num_voxels = len(tile.order)
        if use_coarse and len(tile.candidates):
            rows = tile.candidates
            passed = _overlaps_tile(
                coarse_means[rows],
                coarse_radii[rows],
                coarse_depths[rows],
                tile.bounds,
                camera.near,
            )
            tile.coarse_tested = tile.counts.copy()
            tile.coarse_passed = np.bincount(
                tile.segments[passed], minlength=num_voxels
            ).astype(np.int64)
            tile.fine_candidates = tile.candidates[passed]
            tile.fine_segments = tile.segments[passed]
        elif use_coarse:
            tile.coarse_tested = tile.counts.copy()
            tile.coarse_passed = np.zeros(num_voxels, dtype=np.int64)
            tile.fine_candidates = tile.candidates
            tile.fine_segments = tile.segments
        else:
            tile.coarse_tested = np.zeros(num_voxels, dtype=np.int64)
            tile.coarse_passed = np.zeros(num_voxels, dtype=np.int64)
            tile.fine_candidates = tile.candidates
            tile.fine_segments = tile.segments
        tile.fine_tested = np.bincount(
            tile.fine_segments, minlength=num_voxels
        ).astype(np.int64)

    if tiles:
        union = np.unique(
            np.concatenate([tile.fine_candidates for tile in tiles])
        ).astype(np.int64)
    else:
        union = np.zeros(0, dtype=np.int64)
    projected = project_gaussians(
        model, camera, sh_degree=config.sh_degree, indices=union
    )

    for tile in tiles:
        num_voxels = len(tile.order)
        rows = np.searchsorted(union, tile.fine_candidates)
        fine_pass = projected.valid[rows] & _overlaps_tile(
            projected.means2d[rows],
            projected.radii[rows],
            projected.depths[rows],
            tile.bounds,
            camera.near,
        )
        tile.fine_passed = np.bincount(
            tile.fine_segments[fine_pass], minlength=num_voxels
        ).astype(np.int64)
        survivor_rows = rows[fine_pass]
        segment_ids = tile.fine_segments[fine_pass]
        # Segment-wise stable depth sort — the same lexsort as the off path.
        stream_order = np.lexsort((projected.depths[survivor_rows], segment_ids))
        tile.stream_rows = survivor_rows[stream_order]
        tile.stream_model = tile.fine_candidates[fine_pass][stream_order]

    # --- Phase 3: cross-tile chunked blend -------------------------------
    frag, viol, transmittance, color, saturation = _blend_cross_tile(
        tiles, projected, camera, stats
    )

    # --- Phase 4: per-tile early-termination prefix + accounting ---------
    for slot, tile in enumerate(tiles):
        x0, y0, x1, y1 = tile.bounds
        cols = slice(tile.col_start, tile.col_start + tile.num_pixels)
        tile_saturation = saturation[cols]
        total = tile.stream_len
        if total and int(tile_saturation.max()) < total:
            segment_ends = np.cumsum(tile.fine_passed)
            processed = (
                int(
                    np.searchsorted(
                        segment_ends, int(tile_saturation.max()), side="right"
                    )
                )
                + 1
            )
        else:
            processed = len(tile.order)

        stats.num_tile_voxel_pairs += processed
        stats.gaussians_streamed += int(tile.counts[:processed].sum())
        stats.filter = stats.filter.merge(_prefix_filter_stats(tile, processed))
        coarse_passed = tile.coarse_passed if use_coarse else tile.counts
        stats.traffic = stats.traffic.merge(
            renderer.layout.voxel_stream_traffic_batch(
                tile.order[:processed], coarse_passed[:processed]
            )
        )
        survivors = tile.fine_passed[:processed]
        survivors = survivors[survivors > 0]
        stats.sorted_gaussians += int(survivors.sum())
        stats.sort_list_lengths.extend(int(n) for n in survivors)
        if len(survivors):
            stats.max_voxel_list_length = max(
                stats.max_voxel_list_length, int(survivors.max())
            )
        stats.rendered_gaussian_slots += int(survivors.sum())
        stats.blended_fragments += int(frag[slot])
        stats.depth_order_errors += int(viol[slot])
        stats.blended_fragment_slots += int(frag[slot])

        tile_t = transmittance[cols]
        final = color[cols] + tile_t[:, None] * background[None, :]
        h, w = y1 - y0, x1 - x0
        image[y0:y1, x0:x1] = final.reshape(h, w, 3)
        alpha_img[y0:y1, x0:x1] = (1.0 - tile_t).reshape(h, w)

    reused_total = carried + revalidated
    return {
        "tile_mode": "serial",
        "temporal_mode": "carry",
        "cold_frame": cold_frame,
        "carried_voxels": carried,
        "revalidated": revalidated,
        "coherence_hit_rate": carried / reused_total if reused_total else 0.0,
        **prep_info,
    }


def _blend_cross_tile(
    tiles: List[_TileWork],
    projected,
    camera: Camera,
    stats,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Blend every tile's voxel stream through one cross-tile chunk loop.

    Mirrors the arithmetic of the per-tile broadcast kernel
    (:func:`repro.engine.kernels._blend_batched`) line for line on stacked
    pixel columns; per-column values (transmittance chain, contribution
    gates, saturation positions, fragment/violation counts) are
    bit-identical to the per-tile chunking because the recurrence is
    invariant to chunk partitioning.  Returns per-tile fragment and
    violation counts plus the per-column transmittance, colour and
    saturation position arrays.
    """
    num_tiles = len(tiles)
    frag = np.zeros(num_tiles, dtype=np.int64)
    viol = np.zeros(num_tiles, dtype=np.int64)

    # Stack every tile's pixel columns (meshgrid order, as the off path).
    px_parts: List[np.ndarray] = []
    py_parts: List[np.ndarray] = []
    col_tile_parts: List[np.ndarray] = []
    offset = 0
    for slot, tile in enumerate(tiles):
        x0, y0, x1, y1 = tile.bounds
        xs, ys = np.meshgrid(np.arange(x0, x1), np.arange(y0, y1))
        xs = xs.reshape(-1)
        ys = ys.reshape(-1)
        tile.col_start = offset
        tile.num_pixels = len(xs)
        offset += len(xs)
        px_parts.append(xs.astype(np.float64) + 0.5)
        py_parts.append(ys.astype(np.float64) + 0.5)
        col_tile_parts.append(np.full(len(xs), slot, dtype=np.int64))
    if not tiles:
        empty = np.zeros(0, dtype=np.float64)
        return frag, viol, empty, np.zeros((0, 3)), np.zeros(0, dtype=np.int64)
    px = np.concatenate(px_parts)
    py = np.concatenate(py_parts)
    col_tile = np.concatenate(col_tile_parts)
    num_columns = len(px)

    transmittance = np.ones(num_columns, dtype=np.float64)
    color = np.zeros((num_columns, 3), dtype=np.float64)
    max_depth = np.full(num_columns, -np.inf, dtype=np.float64)
    stream_lens = np.array([tile.stream_len for tile in tiles], dtype=np.int64)
    saturation = stream_lens[col_tile].copy()

    # Padded projection rows: one sentinel row whose zero opacity, conic and
    # mean make it an exact no-op (alpha 0, blending factor exactly 1.0).
    # The per-parameter 1-D copies make the chunk gathers contiguous takes.
    sentinel = len(projected.means2d)
    pad_mean_x = np.append(projected.means2d[:, 0], 0.0)
    pad_mean_y = np.append(projected.means2d[:, 1], 0.0)
    pad_conic_a = np.append(projected.conics[:, 0], 0.0)
    pad_conic_b = np.append(projected.conics[:, 1], 0.0)
    pad_conic_c = np.append(projected.conics[:, 2], 0.0)
    pad_colors3 = np.vstack([projected.colors, np.zeros((1, 3))])
    pad_opacities = np.append(projected.opacities, 0.0)
    pad_depths = np.append(projected.depths.astype(np.float64), 0.0)

    # Whole-frame padded stream matrices: column j holds tile j's stream
    # rows / model ids, sentinel- and zero-padded past the stream end.
    # Row-major chunk layout (chunk rows x active columns) keeps every
    # accumulate/cumprod step one contiguous vectorized row operation.
    max_len = int(stream_lens.max()) if num_tiles else 0
    stream_matrix = np.full((max_len, num_tiles), sentinel, dtype=np.int64)
    model_matrix = np.zeros((max_len, num_tiles), dtype=np.int64)
    for j, tile in enumerate(tiles):
        stream_matrix[: tile.stream_len, j] = tile.stream_rows
        model_matrix[: tile.stream_len, j] = tile.stream_model

    weights = stats.gaussian_blend_weight
    violation_weights = stats.gaussian_violation_weight

    # Walk whole tiles in column blocks of ~CARRY_COL_BLOCK pixels: each
    # block's chunk temporaries stay cache-resident (the off path gets the
    # same locality from per-tile blending), and per-column independence of
    # the recurrence keeps every output bit-identical to one global walk.
    blocks: List[Tuple[int, int]] = []
    block_lo = 0
    for slot, tile in enumerate(tiles):
        block_hi_cols = tile.col_start + tile.num_pixels
        if (
            slot > block_lo
            and block_hi_cols - tiles[block_lo].col_start > CARRY_COL_BLOCK
        ):
            blocks.append((block_lo, slot))
            block_lo = slot
    blocks.append((block_lo, num_tiles))

    for slot_lo, slot_hi in blocks:
        col_lo = tiles[slot_lo].col_start
        col_hi = tiles[slot_hi - 1].col_start + tiles[slot_hi - 1].num_pixels
        block_max_len = int(stream_lens[slot_lo:slot_hi].max())
        _blend_column_block(
            tiles,
            col_lo,
            col_hi,
            block_max_len,
            px,
            py,
            col_tile,
            num_tiles,
            transmittance,
            color,
            max_depth,
            stream_lens,
            saturation,
            stream_matrix,
            model_matrix,
            pad_mean_x,
            pad_mean_y,
            pad_conic_a,
            pad_conic_b,
            pad_conic_c,
            pad_colors3,
            pad_opacities,
            pad_depths,
            weights,
            violation_weights,
            frag,
            viol,
        )

    return frag, viol, transmittance, color, saturation


def _blend_column_block(
    tiles: List[_TileWork],
    col_lo: int,
    col_hi: int,
    max_len: int,
    px: np.ndarray,
    py: np.ndarray,
    col_tile: np.ndarray,
    num_tiles: int,
    transmittance: np.ndarray,
    color: np.ndarray,
    max_depth: np.ndarray,
    stream_lens: np.ndarray,
    saturation: np.ndarray,
    stream_matrix: np.ndarray,
    model_matrix: np.ndarray,
    pad_mean_x: np.ndarray,
    pad_mean_y: np.ndarray,
    pad_conic_a: np.ndarray,
    pad_conic_b: np.ndarray,
    pad_conic_c: np.ndarray,
    pad_colors3: np.ndarray,
    pad_opacities: np.ndarray,
    pad_depths: np.ndarray,
    weights,
    violation_weights,
    frag: np.ndarray,
    viol: np.ndarray,
) -> None:
    """Run the chunked blend over one contiguous block of pixel columns."""
    block_cols = col_tile[col_lo:col_hi]
    start = 0
    while start < max_len:
        participating = stream_lens > start
        active = col_lo + np.flatnonzero(
            (transmittance[col_lo:col_hi] > TRANSMITTANCE_EPSILON)
            & participating[block_cols]
        )
        if len(active) == 0:
            break
        # col_tile is ascending, so the active columns of one tile are
        # contiguous — segment reductions (reduceat) recover per-tile sums.
        col_active = col_tile[active]
        present = np.unique(col_active)
        runs = np.bincount(col_active, minlength=num_tiles)[present]
        boundaries = np.concatenate(([0], np.cumsum(runs[:-1])))
        # Chunk-partition invariance makes the boundary placement a pure
        # performance choice: chunks grow as columns saturate (amortising
        # the per-chunk call overhead over the long-stream tail) and the
        # last chunk shrinks to the longest remaining stream so finished
        # tiles do not pay for sentinel rows.
        rows_k = max(CARRY_CHUNK, CARRY_CHUNK_ELEMS // max(len(active), 1))
        rows_k = int(min(rows_k, stream_lens[present].max() - start))
        stop = start + rows_k

        # Every pixel column of a tile shares the tile's stream, so the
        # per-Gaussian parameters vary per (chunk row, tile) only: gather
        # them once per present tile (a small random gather) and expand to
        # columns with a sequential ``take`` — identical values, but the
        # expensive scattered reads shrink by the tile occupancy factor.
        tile_chunk = stream_matrix[start:stop].take(present, axis=1)
        col_pos = np.repeat(np.arange(len(present)), runs)
        mean_x = pad_mean_x.take(tile_chunk).take(col_pos, axis=1)
        mean_y = pad_mean_y.take(tile_chunk).take(col_pos, axis=1)
        opacities = pad_opacities.take(tile_chunk).take(col_pos, axis=1)
        depths = pad_depths.take(tile_chunk).take(col_pos, axis=1)

        apx = px[active]
        apy = py[active]
        transmittance_in = transmittance[active]

        dx = apx[None, :] - mean_x
        dy = apy[None, :] - mean_y
        power = pad_conic_a.take(tile_chunk).take(col_pos, axis=1)
        power *= dx * dx
        power += pad_conic_c.take(tile_chunk).take(col_pos, axis=1) * (dy * dy)
        power *= -0.5
        dx *= dy
        dx *= pad_conic_b.take(tile_chunk).take(col_pos, axis=1)
        power -= dx

        positive = power > 0.0
        np.minimum(power, 0.0, out=power)
        a = np.exp(power, out=power)
        a *= opacities
        np.minimum(a, ALPHA_MAX, out=a)
        positive |= a <= ALPHA_EPSILON
        np.copyto(a, 0.0, where=positive)

        factors = 1.0 - a
        factors[0] *= transmittance_in
        running = np.empty((rows_k + 1, len(active)), dtype=np.float64)
        running[0] = transmittance_in
        np.cumprod(factors, axis=0, out=running[1:])
        contributes = (a > 0.0) & (running[:-1] > TRANSMITTANCE_EPSILON)
        weight = np.where(contributes, a * running[:-1], 0.0)

        # Colour accumulation as one small matmul per present tile: the
        # colour block varies per (chunk row, tile) only, so the per-column
        # weighted sum is (columns x rows) @ (rows x 3).  Reassociating the
        # sum is covered by the image tolerance, like the tile merges.
        ends = np.cumsum(runs)
        for i in range(len(present)):
            cs, ce = boundaries[i], ends[i]
            block = pad_colors3[tile_chunk[:, i]]
            color[active[cs:ce]] += weight[:, cs:ce].T @ block

        counts_col = np.count_nonzero(contributes, axis=0)
        frag[present] += np.add.reduceat(counts_col, boundaries)

        prior_max = np.empty((rows_k + 1, len(active)), dtype=np.float64)
        prior_max[0] = max_depth[active]
        prior_max[1:] = np.where(contributes, depths, -np.inf)
        np.maximum.accumulate(prior_max, axis=0, out=prior_max)
        violated = contributes & (
            prior_max[:-1] > depths + DEPTH_VIOLATION_EPSILON
        )
        max_depth[active] = prior_max[-1]

        # Per-(chunk row, tile) weight sums scattered into the frame-level
        # per-Gaussian attribution arrays (pad rows carry exactly 0.0 into
        # model id 0, a no-op).
        model_chunk = model_matrix[start:stop].take(present, axis=1)
        np.add.at(weights, model_chunk, np.add.reduceat(weight, boundaries, axis=1))
        if violated.any():
            viol[present] += np.add.reduceat(
                np.count_nonzero(violated, axis=0), boundaries
            )
            np.add.at(
                violation_weights,
                model_chunk,
                np.add.reduceat(np.where(violated, weight, 0.0), boundaries, axis=1),
            )

        # The running product is non-increasing (factors are in [0, 1]), so
        # a column saturated somewhere in the chunk iff its final value is
        # below the epsilon; only those columns pay for the first-row scan.
        sat_cols = running[-1] <= TRANSMITTANCE_EPSILON
        if sat_cols.any():
            sat_idx = np.flatnonzero(sat_cols)
            first_row = np.argmax(
                running[1:, sat_idx] <= TRANSMITTANCE_EPSILON, axis=0
            )
            saturation[active[sat_idx]] = start + first_row

        # Post-chunk transmittance: the running value after the column's
        # last contributing row (monotonicity makes it the minimum the
        # off-path kernel takes over contributing rows); columns with no
        # contribution keep their incoming value.
        has_contrib = counts_col > 0
        last_row = rows_k - 1 - np.argmax(contributes[::-1], axis=0)
        transmittance[active] = np.where(
            has_contrib,
            running[last_row + 1, np.arange(len(active))],
            transmittance_in,
        )
        start = stop
