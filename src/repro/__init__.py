"""Reproduction of STREAMINGGS (DAC 2025).

Voxel-based streaming 3D Gaussian Splatting with memory optimization and
architectural support.  The package is organised as:

``repro.gaussians``
    A from-scratch NumPy implementation of the 3D Gaussian Splatting
    substrate: Gaussian parameter model, spherical harmonics, cameras, EWA
    projection, tile binning, depth sorting, and the tile-centric reference
    rasterizer the paper uses as its algorithmic baseline.

``repro.scenes``
    Procedural scene generators standing in for the Synthetic-NSVF,
    Synthetic-NeRF, Tanks&Temples and Deep Blending scenes evaluated in the
    paper, with per-scene statistics matched to the published workloads.

``repro.variants``
    The Mini-Splatting and LightGaussian model-compaction algorithms the
    paper layers its pipeline on top of.

``repro.compression``
    Vector quantization (k-means codebooks) and quantization-aware
    fine-tuning used by the customized DRAM data layout (Sec. III-C).

``repro.training``
    NumPy optimizers and the boundary-aware fine-tuning loss (Sec. III-B).

``repro.engine``
    The unified render-engine layer both renderers sit on: interchangeable
    alpha-blending kernels (the per-Gaussian reference loop and a fully
    vectorized broadcast kernel, selected via
    ``StreamingConfig.blend_kernel`` / ``TileRasterizer(kernel=...)``),
    dense array-based per-Gaussian statistics accumulation, the frame
    preparation cache memoizing view geometry per camera pose, and the
    batched :class:`~repro.engine.service.RenderService` front-end the
    analysis harness renders through.

``repro.core``
    The paper's primary contribution: the memory-centric, fully streaming
    voxel renderer — voxel grid, ray/voxel ordering (DAG + topological
    sort), hierarchical filtering, the two-half DRAM data layout, and the
    streaming pipeline itself.

``repro.arch``
    The analytical architecture model: StreamingGS accelerator (VSU, HFU,
    sorting and rendering units), GSCore and Orin NX GPU baselines, DRAM /
    SRAM / energy / area models.

``repro.analysis``
    The experiment harness that regenerates every table and figure in the
    paper's evaluation section.

``repro.api``
    The declarative front-end: :class:`~repro.api.session.Session` owns the
    render service, scene cache and seeded RNG; experiments are declared as
    :class:`~repro.api.spec.ExperimentSpec` points (scene x algorithm x
    compression x config overrides x arch model) or expanded into parameter
    grids with :func:`~repro.api.spec.sweep`, and every run returns a typed
    :class:`~repro.api.result.ExperimentResult` with ``.format()``,
    ``.metrics`` and ``.to_json()``.
"""

from repro.gaussians.model import GaussianModel
from repro.gaussians.camera import Camera
from repro.gaussians.rasterizer import TileRasterizer, RenderOutput
from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine.service import RenderRequest, RenderService
from repro.scenes.registry import SCENE_REGISTRY, build_scene
from repro.arch.accelerator import StreamingGSAccelerator
from repro.arch.gpu import OrinNXModel
from repro.arch.gscore import GSCoreModel
from repro.api import (
    ExperimentResult,
    ExperimentSpec,
    Session,
    SweepResult,
    get_default_session,
    sweep,
)

__version__ = "1.10.0"

__all__ = [
    "GaussianModel",
    "Camera",
    "TileRasterizer",
    "RenderOutput",
    "StreamingConfig",
    "StreamingRenderer",
    "RenderRequest",
    "RenderService",
    "SCENE_REGISTRY",
    "build_scene",
    "StreamingGSAccelerator",
    "OrinNXModel",
    "GSCoreModel",
    "Session",
    "ExperimentSpec",
    "ExperimentResult",
    "SweepResult",
    "sweep",
    "get_default_session",
    "__version__",
]
