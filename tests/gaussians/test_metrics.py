"""Tests for image-quality metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.metrics import dssim, mse, psnr, ssim


def random_image(seed=0, shape=(24, 32, 3)):
    return np.random.default_rng(seed).uniform(0, 1, size=shape)


def test_mse_zero_for_identical():
    image = random_image()
    assert mse(image, image) == 0.0


def test_mse_shape_mismatch():
    with pytest.raises(ValueError):
        mse(np.zeros((4, 4)), np.zeros((5, 4)))


def test_psnr_identical_is_infinite():
    image = random_image()
    assert psnr(image, image) == float("inf")


def test_psnr_known_value():
    a = np.zeros((10, 10))
    b = np.full((10, 10), 0.1)
    assert abs(psnr(a, b) - 20.0) < 1e-9


def test_psnr_decreases_with_noise():
    image = random_image()
    rng = np.random.default_rng(1)
    low_noise = np.clip(image + rng.normal(0, 0.01, image.shape), 0, 1)
    high_noise = np.clip(image + rng.normal(0, 0.1, image.shape), 0, 1)
    assert psnr(image, low_noise) > psnr(image, high_noise)


def test_ssim_identical_is_one():
    image = random_image()
    assert abs(ssim(image, image) - 1.0) < 1e-9


def test_ssim_bounded():
    a = random_image(0)
    b = random_image(1)
    value = ssim(a, b)
    assert -1.0 <= value <= 1.0


def test_ssim_grayscale_supported():
    a = random_image(0, shape=(24, 32))
    b = random_image(1, shape=(24, 32))
    assert -1.0 <= ssim(a, b) <= 1.0


def test_dssim_zero_for_identical():
    image = random_image()
    assert abs(dssim(image, image)) < 1e-12


def test_dssim_positive_for_different():
    assert dssim(random_image(0), random_image(5)) > 0.0


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), sigma=st.floats(0.005, 0.2))
def test_psnr_matches_mse_definition(seed, sigma):
    image = random_image(seed)
    noisy = np.clip(image + np.random.default_rng(seed + 1).normal(0, sigma, image.shape), 0, 1)
    err = mse(image, noisy)
    assert abs(psnr(image, noisy) - 10 * np.log10(1.0 / err)) < 1e-9
