"""Tests for EWA projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import (
    build_covariance_3d,
    coarse_project_centers,
    project_covariance_2d,
    project_gaussians,
    quaternion_to_rotation_matrix,
)
from tests.conftest import make_camera, make_model


def test_quaternion_identity():
    rot = quaternion_to_rotation_matrix(np.array([[1.0, 0.0, 0.0, 0.0]]))
    np.testing.assert_allclose(rot[0], np.eye(3), atol=1e-12)


def test_quaternion_90deg_about_z():
    q = np.array([[np.cos(np.pi / 4), 0.0, 0.0, np.sin(np.pi / 4)]])
    rot = quaternion_to_rotation_matrix(q)[0]
    np.testing.assert_allclose(rot @ np.array([1.0, 0, 0]), [0, 1, 0], atol=1e-9)


@settings(max_examples=50, deadline=None)
@given(
    q=st.lists(
        st.floats(min_value=-1, max_value=1, allow_nan=False), min_size=4, max_size=4
    ).filter(lambda q: sum(abs(x) for x in q) > 1e-3)
)
def test_quaternion_matrices_are_rotations(q):
    rot = quaternion_to_rotation_matrix(np.array([q]))[0]
    np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-6)
    assert np.isclose(np.linalg.det(rot), 1.0, atol=1e-6)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_covariance_3d_is_positive_semidefinite(seed):
    rng = np.random.default_rng(seed)
    scales = rng.lognormal(0.0, 0.5, size=(8, 3))
    quats = rng.normal(size=(8, 4))
    cov = build_covariance_3d(scales, quats)
    for c in cov:
        np.testing.assert_allclose(c, c.T, atol=1e-9)
        eigenvalues = np.linalg.eigvalsh(c)
        assert np.all(eigenvalues >= -1e-9)


def test_covariance_eigenvalues_match_scales():
    scales = np.array([[0.5, 1.0, 2.0]])
    quats = np.array([[1.0, 0.0, 0.0, 0.0]])
    cov = build_covariance_3d(scales, quats)[0]
    np.testing.assert_allclose(np.sort(np.diag(cov)), np.sort(scales[0] ** 2), atol=1e-9)


def test_projected_covariance_is_psd(small_model):
    camera = make_camera()
    means_cam = camera.world_to_camera(small_model.positions)
    cov3d = build_covariance_3d(small_model.scales, small_model.rotations)
    w = camera.rotation
    cov_cam = np.einsum("ij,njk,lk->nil", w, cov3d, w)
    cov2d = project_covariance_2d(cov_cam, means_cam, camera)
    dets = cov2d[:, 0, 0] * cov2d[:, 1, 1] - cov2d[:, 0, 1] ** 2
    assert np.all(dets > 0)
    assert np.all(cov2d[:, 0, 0] > 0)


def test_project_gaussians_shapes(small_model):
    camera = make_camera()
    projected = project_gaussians(small_model, camera)
    n = len(small_model)
    assert projected.means2d.shape == (n, 2)
    assert projected.conics.shape == (n, 3)
    assert projected.colors.shape == (n, 3)
    assert projected.valid.dtype == bool
    assert projected.num_valid > 0


def test_project_gaussians_subset_indices(small_model):
    camera = make_camera()
    subset = project_gaussians(small_model, camera, indices=np.array([2, 4, 6]))
    assert len(subset) == 3
    full = project_gaussians(small_model, camera)
    np.testing.assert_allclose(subset.means2d[1], full.means2d[4])


def test_project_empty_model():
    camera = make_camera()
    empty = GaussianModel.empty()
    projected = project_gaussians(empty, camera)
    assert len(projected) == 0
    assert projected.num_valid == 0


def test_behind_camera_marked_invalid():
    camera = make_camera(distance=2.0)
    model = make_model(num_gaussians=20, extent=0.5)
    # Put half of the Gaussians far behind the camera.
    model.positions[:10, 0] = 50.0
    projected = project_gaussians(model, camera)
    assert not projected.valid[:10].any()
    assert projected.valid[10:].any()


def test_projected_center_matches_camera_projection(small_model):
    camera = make_camera()
    projected = project_gaussians(small_model, camera)
    pixels, _ = camera.project(small_model.positions)
    np.testing.assert_allclose(projected.means2d, pixels, atol=1e-9)


def test_radii_grow_with_scale():
    camera = make_camera()
    base = make_model(num_gaussians=30, scale=0.05, seed=7)
    bigger = base.copy()
    bigger.scales = (bigger.scales * 4.0).astype(np.float32)
    r_small = project_gaussians(base, camera).radii
    r_big = project_gaussians(bigger, camera).radii
    valid = project_gaussians(base, camera).valid
    assert np.all(r_big[valid] >= r_small[valid])


def test_coarse_radius_is_conservative(small_model):
    """The coarse-filter radius must over-approximate the precise radius."""
    camera = make_camera()
    projected = project_gaussians(small_model, camera)
    _, depths, coarse_radii = coarse_project_centers(
        small_model.positions, small_model.max_scales, camera
    )
    valid = projected.valid & (depths > camera.near)
    assert np.all(coarse_radii[valid] >= projected.radii[valid] - 1e-6)


def test_coarse_centers_match_projection(small_model):
    camera = make_camera()
    means, depths, _ = coarse_project_centers(
        small_model.positions, small_model.max_scales, camera
    )
    pixels, proj_depths = camera.project(small_model.positions)
    np.testing.assert_allclose(means, pixels, atol=1e-9)
    np.testing.assert_allclose(depths, proj_depths, atol=1e-9)
