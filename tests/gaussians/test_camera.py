"""Tests for the pinhole camera and trajectories."""

import numpy as np
import pytest

from repro.gaussians.camera import Camera, look_at, orbit_trajectory
from tests.conftest import make_camera


def test_lookat_rotation_is_orthonormal():
    rot = look_at(np.array([3.0, 2.0, 1.0]), np.zeros(3))
    np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-9)
    assert np.isclose(np.linalg.det(rot), 1.0, atol=1e-9)


def test_lookat_forward_points_at_target():
    eye = np.array([5.0, 0.0, 0.0])
    rot = look_at(eye, np.zeros(3))
    forward = rot[2]
    expected = -eye / np.linalg.norm(eye)
    np.testing.assert_allclose(forward, expected, atol=1e-9)


def test_lookat_rejects_coincident_points():
    with pytest.raises(ValueError):
        look_at(np.zeros(3), np.zeros(3))


def test_lookat_handles_view_parallel_to_up():
    rot = look_at(np.array([0.0, 0.0, 5.0]), np.zeros(3), up=(0.0, 0.0, 1.0))
    np.testing.assert_allclose(rot @ rot.T, np.eye(3), atol=1e-9)


def test_camera_validation():
    with pytest.raises(ValueError):
        Camera(rotation=np.eye(3), translation=np.zeros(3), width=0, height=10, fx=10, fy=10)
    with pytest.raises(ValueError):
        Camera(rotation=np.eye(3), translation=np.zeros(3), width=10, height=10, fx=-1, fy=10)
    with pytest.raises(ValueError):
        Camera(
            rotation=np.eye(3),
            translation=np.zeros(3),
            width=10,
            height=10,
            fx=10,
            fy=10,
            near=5.0,
            far=1.0,
        )


def test_target_projects_to_image_center():
    camera = make_camera()
    pixels, depths = camera.project(np.zeros((1, 3)))
    assert depths[0] > 0
    np.testing.assert_allclose(pixels[0, 0], camera.cx, atol=1e-6)
    np.testing.assert_allclose(pixels[0, 1], camera.cy, atol=1e-6)


def test_point_behind_camera_has_negative_depth():
    camera = make_camera(distance=6.0)
    behind = np.array([[20.0, 0.5, 1.0]])
    _, depths = camera.project(behind)
    assert depths[0] < 0


def test_world_to_camera_roundtrip_depth():
    camera = make_camera()
    points = np.random.default_rng(0).uniform(-1, 1, size=(10, 3))
    cam_points = camera.world_to_camera(points)
    distances = np.linalg.norm(points - camera.position, axis=1)
    np.testing.assert_allclose(np.linalg.norm(cam_points, axis=1), distances, atol=1e-9)


def test_pixel_rays_are_unit_and_hit_projection():
    camera = make_camera()
    origins, directions = camera.pixel_rays(np.array([10, 20]), np.array([5, 30]))
    np.testing.assert_allclose(np.linalg.norm(directions, axis=1), 1.0, atol=1e-12)
    np.testing.assert_allclose(origins[0], camera.position)
    # Marching along the centre-pixel ray keeps the point projected there.
    cx, cy = int(camera.cx), int(camera.cy)
    __, dirs = camera.pixel_rays(np.array([cx]), np.array([cy]))
    point = camera.position + 4.0 * dirs[0]
    pixels, _ = camera.project(point[None, :])
    assert abs(pixels[0, 0] - (cx + 0.5)) < 1.0
    assert abs(pixels[0, 1] - (cy + 0.5)) < 1.0


def test_view_directions_are_unit(small_model):
    camera = make_camera()
    dirs = camera.view_directions(small_model.positions)
    np.testing.assert_allclose(np.linalg.norm(dirs, axis=1), 1.0, atol=1e-9)


def test_scaled_camera():
    camera = make_camera(width=64, height=48)
    half = camera.scaled(0.5)
    assert half.width == 32
    assert half.height == 24
    np.testing.assert_allclose(half.fx, camera.fx * 0.5)


def test_orbit_trajectory_count_and_target():
    cameras = orbit_trajectory(
        center=(0, 0, 0), radius=5.0, num_views=6, width=32, height=32
    )
    assert len(cameras) == 6
    for cam in cameras:
        np.testing.assert_allclose(np.linalg.norm(cam.position), 5.0, atol=1e-9)
        pixels, depth = cam.project(np.zeros((1, 3)))
        assert depth[0] > 0
        np.testing.assert_allclose(pixels[0], [cam.cx, cam.cy], atol=1e-6)


def test_num_pixels(camera):
    assert camera.num_pixels == camera.width * camera.height
