"""Tests for spherical harmonics evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.sh import (
    SH_C0,
    eval_sh,
    num_sh_coeffs,
    rgb_to_sh_dc,
    sh_basis,
    sh_dc_to_rgb,
)


def unit_vectors(n, seed=0):
    rng = np.random.default_rng(seed)
    v = rng.normal(size=(n, 3))
    return v / np.linalg.norm(v, axis=1, keepdims=True)


@pytest.mark.parametrize("degree,expected", [(0, 1), (1, 4), (2, 9), (3, 16)])
def test_num_sh_coeffs(degree, expected):
    assert num_sh_coeffs(degree) == expected


def test_num_sh_coeffs_rejects_bad_degree():
    with pytest.raises(ValueError):
        num_sh_coeffs(4)
    with pytest.raises(ValueError):
        num_sh_coeffs(-1)


@pytest.mark.parametrize("degree", [0, 1, 2, 3])
def test_basis_shape(degree):
    dirs = unit_vectors(17)
    basis = sh_basis(dirs, degree=degree)
    assert basis.shape == (17, num_sh_coeffs(degree))


def test_basis_dc_is_constant():
    dirs = unit_vectors(32)
    basis = sh_basis(dirs, degree=3)
    np.testing.assert_allclose(basis[:, 0], SH_C0)


def test_basis_single_direction_promoted_to_batch():
    basis = sh_basis(np.array([0.0, 0.0, 1.0]), degree=1)
    assert basis.shape == (1, 4)


def test_dc_only_gives_view_independent_colour():
    dirs = unit_vectors(16)
    sh_dc = rgb_to_sh_dc(np.tile([0.3, 0.6, 0.9], (16, 1)))
    sh_rest = np.zeros((16, 15, 3))
    colors = eval_sh(sh_dc, sh_rest, dirs, degree=3)
    np.testing.assert_allclose(colors, np.tile([0.3, 0.6, 0.9], (16, 1)), atol=1e-6)


def test_rgb_sh_roundtrip():
    rgb = np.random.default_rng(0).uniform(0, 1, size=(20, 3))
    np.testing.assert_allclose(sh_dc_to_rgb(rgb_to_sh_dc(rgb)), rgb, atol=1e-9)


def test_colors_are_clamped_non_negative():
    dirs = unit_vectors(8)
    sh_dc = np.full((8, 3), -10.0)
    colors = eval_sh(sh_dc, np.zeros((8, 15, 3)), dirs)
    assert np.all(colors >= 0.0)


def test_higher_degrees_add_view_dependence():
    dirs = unit_vectors(2, seed=3)
    sh_dc = rgb_to_sh_dc(np.tile([0.5, 0.5, 0.5], (2, 1)))
    sh_rest = np.zeros((2, 15, 3))
    sh_rest[:, 0, :] = 0.5
    colors = eval_sh(sh_dc, sh_rest, dirs, degree=3)
    assert not np.allclose(colors[0], colors[1])


def test_degree_zero_ignores_rest_coefficients():
    dirs = unit_vectors(4)
    sh_dc = rgb_to_sh_dc(np.tile([0.2, 0.4, 0.6], (4, 1)))
    sh_rest = np.random.default_rng(0).normal(size=(4, 15, 3))
    colors = eval_sh(sh_dc, sh_rest, dirs, degree=0)
    np.testing.assert_allclose(colors, np.tile([0.2, 0.4, 0.6], (4, 1)), atol=1e-6)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_sh_basis_orthogonality_montecarlo(seed):
    """SH basis functions are orthogonal under uniform sphere sampling.

    With Monte-Carlo integration the off-diagonal Gram entries should be
    much smaller than the diagonal ones.
    """
    dirs = unit_vectors(4096, seed=seed)
    basis = sh_basis(dirs, degree=2)
    gram = basis.T @ basis / len(dirs)
    diag = np.diag(gram)
    off = gram - np.diag(diag)
    assert np.all(np.abs(off) < 0.25 * diag.min() + 0.05)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000), degree=st.integers(0, 3))
def test_eval_sh_is_linear_in_coefficients(seed, degree):
    rng = np.random.default_rng(seed)
    dirs = unit_vectors(8, seed=seed)
    dc_a, dc_b = rng.normal(size=(2, 8, 3))
    rest_a, rest_b = rng.normal(size=(2, 8, 15, 3)) * 0.1
    # Work in the un-clamped regime by shifting well into positive colours.
    dc_a = dc_a * 0.1 + 3.0
    dc_b = dc_b * 0.1 + 3.0
    combined = eval_sh(dc_a + dc_b, rest_a + rest_b, dirs, degree=degree)
    separate = (
        eval_sh(dc_a, rest_a, dirs, degree=degree)
        + eval_sh(dc_b, rest_b, dirs, degree=degree)
    )
    # eval_sh adds the +0.5 offset once per call, so subtract it.
    np.testing.assert_allclose(combined + 0.5, separate, atol=1e-8)
