"""Tests for the Gaussian parameter model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.model import (
    COARSE_PARAMS_PER_GAUSSIAN,
    FINE_PARAMS_PER_GAUSSIAN,
    PARAMS_PER_GAUSSIAN,
    GaussianModel,
    ModelStatistics,
)
from tests.conftest import make_model


def test_parameter_count_matches_paper():
    assert PARAMS_PER_GAUSSIAN == 59
    assert COARSE_PARAMS_PER_GAUSSIAN == 4
    assert FINE_PARAMS_PER_GAUSSIAN == 55


def test_len_and_num_parameters(small_model):
    assert len(small_model) == 200
    assert small_model.num_gaussians == 200
    assert small_model.num_parameters == 200 * 59


def test_first_and_second_half_shapes(small_model):
    first = small_model.first_half()
    second = small_model.second_half()
    assert first.shape == (200, 4)
    assert second.shape == (200, 55)
    flat = small_model.flat_parameters()
    assert flat.shape == (200, 59)
    np.testing.assert_allclose(flat[:, :4], first)
    np.testing.assert_allclose(flat[:, 4:], second)


def test_first_half_contains_position_and_max_scale(small_model):
    first = small_model.first_half()
    np.testing.assert_allclose(first[:, :3], small_model.positions)
    np.testing.assert_allclose(first[:, 3], small_model.scales.max(axis=1))


def test_max_scales(small_model):
    np.testing.assert_allclose(small_model.max_scales, small_model.scales.max(axis=1))


def test_rotations_are_normalized(small_model):
    norms = np.linalg.norm(small_model.rotations, axis=1)
    np.testing.assert_allclose(norms, 1.0, atol=1e-5)


def test_copy_is_independent(small_model):
    clone = small_model.copy()
    clone.positions[0] = 99.0
    assert small_model.positions[0, 0] != 99.0


def test_subset_selects_rows(small_model):
    subset = small_model.subset(np.array([3, 5, 7]))
    assert len(subset) == 3
    np.testing.assert_allclose(subset.positions[1], small_model.positions[5])


def test_concatenate(small_model, tiny_model):
    combined = small_model.concatenate(tiny_model)
    assert len(combined) == len(small_model) + len(tiny_model)
    np.testing.assert_allclose(combined.positions[-1], tiny_model.positions[-1])


def test_bounding_box_contains_all_points(small_model):
    lo, hi = small_model.bounding_box()
    assert np.all(small_model.positions >= lo - 1e-5)
    assert np.all(small_model.positions <= hi + 1e-5)


def test_bounding_box_padding(small_model):
    lo, hi = small_model.bounding_box()
    lo_pad, hi_pad = small_model.bounding_box(padding=1.0)
    np.testing.assert_allclose(lo_pad, lo - 1.0, atol=1e-5)
    np.testing.assert_allclose(hi_pad, hi + 1.0, atol=1e-5)


def test_scene_extent_positive(small_model):
    assert small_model.scene_extent() > 0


def test_empty_model():
    empty = GaussianModel.empty()
    assert len(empty) == 0
    assert empty.num_parameters == 0
    lo, hi = empty.bounding_box()
    np.testing.assert_allclose(lo, 0.0)
    np.testing.assert_allclose(hi, 0.0)


def test_invalid_scales_rejected():
    model = make_model(10)
    with pytest.raises(ValueError):
        GaussianModel(
            positions=model.positions,
            scales=np.zeros_like(model.scales),
            rotations=model.rotations,
            opacities=model.opacities,
            sh_dc=model.sh_dc,
            sh_rest=model.sh_rest,
        )


def test_mismatched_row_counts_rejected():
    model = make_model(10)
    with pytest.raises(ValueError):
        GaussianModel(
            positions=model.positions,
            scales=model.scales[:5],
            rotations=model.rotations,
            opacities=model.opacities,
            sh_dc=model.sh_dc,
            sh_rest=model.sh_rest,
        )


def test_bad_shape_rejected():
    with pytest.raises(ValueError):
        GaussianModel(
            positions=np.zeros((4, 2)),
            scales=np.ones((4, 3)),
            rotations=np.tile([1.0, 0, 0, 0], (4, 1)),
            opacities=np.ones(4),
            sh_dc=np.zeros((4, 3)),
        )


def test_sh_rest_defaults_to_zero():
    model = GaussianModel(
        positions=np.zeros((3, 3)),
        scales=np.ones((3, 3)),
        rotations=np.tile([1.0, 0, 0, 0], (3, 1)),
        opacities=np.ones(3),
        sh_dc=np.zeros((3, 3)),
    )
    assert model.sh_rest.shape == (3, 15, 3)
    assert np.all(model.sh_rest == 0)


def test_model_statistics(small_model):
    stats = ModelStatistics.from_model(small_model)
    assert stats.num_gaussians == 200
    assert stats.parameter_bytes == 200 * 59 * 4
    assert stats.mean_scale > 0
    assert 0 < stats.mean_opacity <= 1


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=1, max_value=64), seed=st.integers(0, 1000))
def test_subset_of_all_indices_is_identity(n, seed):
    model = make_model(num_gaussians=n, seed=seed)
    subset = model.subset(np.arange(n))
    np.testing.assert_allclose(subset.positions, model.positions)
    np.testing.assert_allclose(subset.scales, model.scales)
