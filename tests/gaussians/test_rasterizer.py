"""Tests for the tile-centric reference rasterizer and alpha blending."""

import numpy as np
import pytest

from repro.gaussians.model import GaussianModel
from repro.gaussians.projection import project_gaussians
from repro.gaussians.rasterizer import BlendState, TileRasterizer, blend_tile
from repro.gaussians.sh import rgb_to_sh_dc
from tests.conftest import make_camera, make_model


def single_gaussian(color=(1.0, 0.0, 0.0), opacity=0.9, scale=0.4, z=0.0):
    return GaussianModel(
        positions=np.array([[0.0, 0.0, z]]),
        scales=np.full((1, 3), scale),
        rotations=np.array([[1.0, 0.0, 0.0, 0.0]]),
        opacities=np.array([opacity]),
        sh_dc=rgb_to_sh_dc(np.array([color])),
        sh_rest=np.zeros((1, 15, 3)),
    )


def test_render_output_shape_and_range(small_model, camera):
    output = TileRasterizer().render(small_model, camera)
    assert output.image.shape == (camera.height, camera.width, 3)
    assert output.alpha.shape == (camera.height, camera.width)
    assert np.all(output.image >= 0.0) and np.all(output.image <= 1.0)
    assert np.all(output.alpha >= 0.0) and np.all(output.alpha <= 1.0)


def test_empty_scene_renders_background():
    camera = make_camera(width=32, height=32)
    model = single_gaussian(opacity=0.9)
    # Move the Gaussian far off screen so nothing renders.
    model.positions[0] = [0.0, 100.0, 0.0]
    output = TileRasterizer(background=(0.2, 0.3, 0.4)).render(model, camera)
    np.testing.assert_allclose(output.image[0, 0], [0.2, 0.3, 0.4], atol=1e-6)
    assert output.alpha.max() == 0.0


def test_single_gaussian_renders_its_colour():
    camera = make_camera(width=48, height=48, distance=4.0)
    model = single_gaussian(color=(0.9, 0.1, 0.1), opacity=0.95, scale=0.6)
    output = TileRasterizer().render(model, camera)
    center = output.image[24, 24]
    assert center[0] > 0.5
    assert center[0] > center[1] and center[0] > center[2]
    assert output.alpha[24, 24] > 0.5


def test_front_gaussian_occludes_back():
    camera = make_camera(width=48, height=48, distance=5.0)
    front = single_gaussian(color=(1.0, 0.0, 0.0), opacity=0.95, scale=0.5)
    back = single_gaussian(color=(0.0, 1.0, 0.0), opacity=0.95, scale=0.5)
    # The camera looks along -x from +x, so larger x is closer to the camera.
    front.positions[0] = [1.0, 0.0, 0.0]
    back.positions[0] = [-1.0, 0.0, 0.0]
    model = front.concatenate(back)
    output = TileRasterizer().render(model, camera)
    center = output.image[24, 24]
    assert center[0] > center[1]


def test_render_stats_populated(small_model, camera):
    output = TileRasterizer().render(small_model, camera)
    stats = output.stats
    assert stats.num_gaussians == len(small_model)
    assert stats.num_projected > 0
    assert stats.num_tile_pairs > 0
    assert stats.num_blended_fragments > 0
    assert stats.sort_pairs == stats.num_tile_pairs


def test_rasterizer_rejects_bad_tile_size():
    with pytest.raises(ValueError):
        TileRasterizer(tile_size=0)


def test_blend_state_transmittance_bounds(small_model, camera):
    projected = project_gaussians(small_model, camera)
    order = np.argsort(projected.depths)
    xs = np.arange(0, 16)
    ys = np.zeros(16, dtype=int) + camera.height // 2
    state = blend_tile(xs, ys, projected, order, track_depth_order=True)
    assert np.all(state.transmittance >= 0.0)
    assert np.all(state.transmittance <= 1.0)
    assert state.blended_fragments >= 0


def test_blend_resume_matches_single_pass(small_model, camera):
    """Blending voxel-by-voxel (resumed state) equals blending all at once."""
    projected = project_gaussians(small_model, camera)
    order = np.argsort(projected.depths)
    xs, ys = np.meshgrid(np.arange(16, 32), np.arange(16, 32))
    xs, ys = xs.reshape(-1), ys.reshape(-1)

    full = blend_tile(xs, ys, projected, order)

    half = len(order) // 2
    state = blend_tile(xs, ys, projected, order[:half])
    state = blend_tile(xs, ys, projected, order[half:], state=state)

    np.testing.assert_allclose(state.color, full.color, atol=1e-9)
    np.testing.assert_allclose(state.transmittance, full.transmittance, atol=1e-9)


def test_depth_order_violations_detected():
    """Blending back-to-front must register per-pixel depth violations."""
    camera = make_camera(width=32, height=32, distance=5.0)
    a = single_gaussian(color=(1, 0, 0), opacity=0.6, scale=0.5)
    b = single_gaussian(color=(0, 1, 0), opacity=0.6, scale=0.5)
    a.positions[0] = [1.0, 0.0, 0.0]   # closer to the camera at +x
    b.positions[0] = [-1.0, 0.0, 0.0]
    model = a.concatenate(b)
    projected = project_gaussians(model, camera)
    xs, ys = np.meshgrid(np.arange(32), np.arange(32))
    xs, ys = xs.reshape(-1), ys.reshape(-1)
    correct = blend_tile(
        xs, ys, projected, np.argsort(projected.depths), track_depth_order=True
    )
    wrong = blend_tile(
        xs,
        ys,
        projected,
        np.argsort(-projected.depths),
        track_depth_order=True,
    )
    assert correct.depth_violations == 0
    assert wrong.depth_violations > 0
    assert wrong.gaussian_violation_weights.sum() > 0.0


def test_blend_state_fresh():
    state = BlendState.fresh(10)
    assert state.color.shape == (10, 3)
    assert np.all(state.transmittance == 1.0)
    assert np.all(np.isneginf(state.max_depth))
