"""Tests for tile binning and depth sorting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gaussians.projection import project_gaussians
from repro.gaussians.sorting import (
    GlobalSortStats,
    bitonic_sort_operations,
    global_sort_statistics,
    sort_tile_gaussians,
)
from repro.gaussians.tiles import TileGrid, bin_gaussians_to_tiles
from tests.conftest import make_camera, make_model


@pytest.fixture
def projected_and_grid():
    camera = make_camera(width=64, height=48)
    model = make_model(num_gaussians=150, seed=3)
    projected = project_gaussians(model, camera)
    grid = TileGrid(camera.width, camera.height, tile_size=16)
    return projected, grid


def test_tile_grid_dimensions():
    grid = TileGrid(width=65, height=48, tile_size=16)
    assert grid.tiles_x == 5
    assert grid.tiles_y == 3
    assert grid.num_tiles == 15


def test_tile_grid_validation():
    with pytest.raises(ValueError):
        TileGrid(width=0, height=10)
    with pytest.raises(ValueError):
        TileGrid(width=10, height=10, tile_size=0)


def test_tile_id_roundtrip():
    grid = TileGrid(width=64, height=64, tile_size=16)
    for tid in range(grid.num_tiles):
        tx, ty = grid.tile_coords(tid)
        assert grid.tile_id(tx, ty) == tid


def test_tile_pixel_bounds_cover_image_exactly():
    grid = TileGrid(width=50, height=30, tile_size=16)
    covered = np.zeros((30, 50), dtype=int)
    for tid in range(grid.num_tiles):
        x0, y0, x1, y1 = grid.tile_pixel_bounds(tid)
        covered[y0:y1, x0:x1] += 1
    assert np.all(covered == 1)


def test_tile_pixel_centers_count():
    grid = TileGrid(width=50, height=30, tile_size=16)
    xs, ys = grid.tile_pixel_centers(grid.num_tiles - 1)
    x0, y0, x1, y1 = grid.tile_pixel_bounds(grid.num_tiles - 1)
    assert len(xs) == (x1 - x0) * (y1 - y0)


def test_gaussian_tile_range_offscreen():
    grid = TileGrid(width=64, height=64, tile_size=16)
    means = np.array([[1000.0, 1000.0], [32.0, 32.0]])
    radii = np.array([5.0, 5.0])
    ranges = grid.gaussian_tile_range(means, radii)
    assert ranges[0, 2] < ranges[0, 0]      # off-screen -> empty range
    assert ranges[1, 2] >= ranges[1, 0]


def test_binning_covers_projected_extent(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    assert binning.num_duplicates >= projected.num_valid * 0 and binning.num_duplicates > 0
    # Every duplicated entry is a valid Gaussian index.
    for indices in binning.tile_lists.values():
        assert np.all(projected.valid[indices])


def test_binning_duplicate_count_matches_lists(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    assert binning.num_duplicates == sum(len(v) for v in binning.tile_lists.values())
    assert set(binning.non_empty_tiles()) == {
        tid for tid, lst in binning.tile_lists.items() if len(lst)
    }


def test_gaussian_lands_in_tile_containing_its_center(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    for gid in np.flatnonzero(projected.valid)[:50]:
        x, y = projected.means2d[gid]
        if not (0 <= x < grid.width and 0 <= y < grid.height):
            continue
        tid = grid.tile_id(int(x // grid.tile_size), int(y // grid.tile_size))
        assert gid in binning.tile_lists.get(tid, [])


def test_sorted_lists_are_depth_ordered(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    sorted_lists = sort_tile_gaussians(projected, binning)
    for indices in sorted_lists.values():
        depths = projected.depths[indices]
        assert np.all(np.diff(depths) >= -1e-9)


def test_sort_preserves_membership(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    sorted_lists = sort_tile_gaussians(projected, binning)
    for tid, indices in binning.tile_lists.items():
        assert sorted(sorted_lists[tid].tolist()) == sorted(indices.tolist())


def test_global_sort_statistics(projected_and_grid):
    projected, grid = projected_and_grid
    binning = bin_gaussians_to_tiles(projected, grid)
    stats = global_sort_statistics(binning)
    assert isinstance(stats, GlobalSortStats)
    assert stats.num_pairs == binning.num_duplicates
    assert stats.total_bytes == stats.key_bytes_read + stats.key_bytes_written
    assert stats.total_bytes > 0


def test_bitonic_sort_operation_counts():
    assert bitonic_sort_operations(0) == 0
    assert bitonic_sort_operations(1) == 0
    assert bitonic_sort_operations(2) == 1
    assert bitonic_sort_operations(4) == 6
    # n log^2 n growth: doubling the size more than doubles the operations.
    assert bitonic_sort_operations(64) > 2 * bitonic_sort_operations(32)


@settings(max_examples=30, deadline=None)
@given(length=st.integers(min_value=2, max_value=4096))
def test_bitonic_operations_monotonic(length):
    assert bitonic_sort_operations(length + 1) >= bitonic_sort_operations(length)
