"""Tests for ExperimentSpec validation and sweep() grid expansion."""

import pytest

from repro.api.spec import ExperimentSpec, sweep
from repro.arch.accelerator import AcceleratorConfig
from repro.core.config import StreamingConfig


class TestExperimentSpec:
    def test_defaults(self):
        spec = ExperimentSpec()
        assert spec.scene == "train"
        assert spec.algorithm == "3dgs"
        assert spec.compression == "vq"
        assert spec.arch == "streaminggs"
        assert spec.config_overrides == {}
        assert spec.arch_overrides == {}

    def test_unknown_scene(self):
        with pytest.raises(ValueError, match="unknown scene"):
            ExperimentSpec(scene="atlantis")

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            ExperimentSpec(algorithm="nerf")

    def test_unknown_compression(self):
        with pytest.raises(ValueError, match="unknown compression"):
            ExperimentSpec(compression="zip")

    def test_unknown_arch(self):
        with pytest.raises(ValueError, match="unknown arch"):
            ExperimentSpec(arch="tpu")

    def test_unknown_config_override(self):
        with pytest.raises(ValueError, match="StreamingConfig override"):
            ExperimentSpec(config={"warp_size": 32})

    def test_use_vq_override_rejected(self):
        with pytest.raises(ValueError, match="compression"):
            ExperimentSpec(config={"use_vq": False})

    def test_arch_options_require_accelerator_arch(self):
        with pytest.raises(ValueError, match="arch_options"):
            ExperimentSpec(arch="gpu", arch_options={"cfus_per_hfu": 2})

    def test_spec_is_hashable_and_comparable(self):
        a = ExperimentSpec(scene="lego", config={"voxel_size": 0.5})
        b = ExperimentSpec(scene="lego", config={"voxel_size": 0.5})
        assert a == b
        assert hash(a) == hash(b)
        assert a != a.with_options(scene="truck")

    def test_streaming_config_scene_default_voxel(self):
        assert ExperimentSpec(scene="lego").streaming_config().voxel_size == 0.4
        assert ExperimentSpec(scene="train").streaming_config().voxel_size == 2.0

    def test_streaming_config_overrides_and_compression(self):
        spec = ExperimentSpec(
            scene="train",
            compression="none",
            config={"voxel_size": 1.5, "blend_kernel": "reference"},
        )
        config = spec.streaming_config()
        assert isinstance(config, StreamingConfig)
        assert config.voxel_size == 1.5
        assert config.blend_kernel == "reference"
        assert config.use_vq is False

    def test_accelerator_config_variant_and_options(self):
        spec = ExperimentSpec(arch="wo_cgf", arch_options={"cfus_per_hfu": 2})
        accel = spec.accelerator_config()
        assert isinstance(accel, AcceleratorConfig)
        assert accel.use_coarse_filter is False
        assert accel.cfus_per_hfu == 2
        with pytest.raises(ValueError, match="not an accelerator"):
            ExperimentSpec(arch="gscore").accelerator_config()

    def test_label_and_to_dict_roundtrip(self):
        spec = ExperimentSpec(scene="lego", tag="mypoint", config={"voxel_size": 0.5})
        assert spec.label == "mypoint"
        assert ExperimentSpec(scene="lego").label == "lego/3dgs/streaminggs"
        data = spec.to_dict()
        assert data["config"] == {"voxel_size": 0.5}
        assert ExperimentSpec(**data) == spec


class TestSweep:
    def test_cartesian_product_order(self):
        specs = sweep(
            ExperimentSpec(scene="train"),
            cfus_per_hfu=(1, 2),
            ffus_per_hfu=(1, 2, 4),
        )
        assert len(specs) == 6
        grid = [
            (s.arch_overrides["cfus_per_hfu"], s.arch_overrides["ffus_per_hfu"])
            for s in specs
        ]
        # Last axis fastest, matching nested for-loops.
        assert grid == [(1, 1), (1, 2), (1, 4), (2, 1), (2, 2), (2, 4)]

    def test_key_routing(self):
        specs = sweep(
            None,
            scene=("lego",),
            voxel_size=(0.5,),
            cfus_per_hfu=(2,),
        )
        (spec,) = specs
        assert spec.scene == "lego"
        assert spec.config_overrides == {"voxel_size": 0.5}
        assert spec.arch_overrides == {"cfus_per_hfu": 2}

    def test_scalar_axis_wrapped(self):
        specs = sweep(voxel_size=1.5)
        assert len(specs) == 1
        assert specs[0].config_overrides["voxel_size"] == 1.5

    def test_auto_tags(self):
        specs = sweep(ExperimentSpec(scene="lego"), voxel_size=(0.4, 0.8))
        assert [s.tag for s in specs] == ["voxel_size=0.4", "voxel_size=0.8"]
        tagged = sweep(ExperimentSpec(scene="lego", tag="base"), voxel_size=(0.4,))
        assert tagged[0].tag == "base: voxel_size=0.4"

    def test_unknown_axis(self):
        with pytest.raises(ValueError, match="unknown sweep axis"):
            sweep(clock_ghz=(1.0, 2.0))

    def test_empty_axis(self):
        with pytest.raises(ValueError, match="no values"):
            sweep(voxel_size=())

    def test_base_overrides_are_preserved(self):
        base = ExperimentSpec(scene="train", config={"tile_size": 8})
        specs = sweep(base, voxel_size=(1.0,))
        assert specs[0].config_overrides == {"tile_size": 8, "voxel_size": 1.0}

    def test_empty_grid_returns_base(self):
        base = ExperimentSpec(scene="lego", tag="solo")
        specs = sweep(base)
        assert specs == [base]
