"""Fault injection for the sweep executor.

Every failure mode the scheduling layer promises to survive is simulated
here: a worker raising mid-shard (the offending spec must be named), pool
creation failing (graceful degradation process -> thread -> serial), a
worker dying mid-run (degrade and recompute), and a persistent pool
breaking (discarded, not reused).  After any failure the result store must
hold no orphaned temporary files — atomic writes either land or vanish.
"""

import concurrent.futures
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.api import (
    ExperimentSpec,
    ResultStore,
    Session,
    SpecEvaluationError,
    SweepExecutor,
    sweep,
)

#: Reduced evaluation resolution keeps each scene context cheap.
SCALE = 0.5


@pytest.fixture(scope="module")
def specs():
    return sweep(
        ExperimentSpec(scene="lego", resolution_scale=SCALE), voxel_size=(0.4, 0.8)
    )


@pytest.fixture(scope="module")
def serial(specs):
    return Session().run_sweep(specs, swept=["voxel_size"])


@pytest.fixture
def poisoned_run_point(monkeypatch):
    """Make every spec tagged ``boom`` raise inside evaluation."""
    original = Session.run_point

    def run_point(self, spec):
        if spec.tag == "boom":
            raise ValueError("injected mid-shard failure")
        return original(self, spec)

    monkeypatch.setattr(Session, "run_point", run_point)



class _DyingPool:
    """A process pool whose futures fail like dead workers."""

    def __init__(self, max_workers=None):
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args, **kwargs):
        future = concurrent.futures.Future()
        future.set_exception(BrokenProcessPool("worker died mid-run"))
        return future

    def shutdown(self, wait=True, **kwargs):
        pass


class _UnbuildablePool:
    """A pool class whose construction itself fails (rlimits, sandboxes)."""

    def __init__(self, max_workers=None):
        raise OSError("no more processes")


class TestWorkerRaisesMidShard:
    def test_serial_batch_names_the_offending_spec(self, poisoned_run_point):
        session = Session()
        good = ExperimentSpec(scene="lego", resolution_scale=SCALE)
        bad = good.with_options(tag="boom")
        with pytest.raises(SpecEvaluationError, match="boom") as excinfo:
            session.run_many([good, bad])
        assert excinfo.value.spec == bad
        assert isinstance(excinfo.value.error, ValueError)
        assert isinstance(excinfo.value.__cause__, ValueError)

    def test_pool_worker_failure_propagates_with_the_spec(
        self, poisoned_run_point, specs
    ):
        grid = list(specs) + [
            ExperimentSpec(scene="lego", resolution_scale=SCALE, tag="boom")
        ]
        executor = SweepExecutor(jobs=2, mode="thread")
        with pytest.raises(SpecEvaluationError, match="boom"):
            executor.run(grid)

    def test_spec_errors_are_not_mistaken_for_pool_failures(
        self, poisoned_run_point, specs
    ):
        """A ValueError from user code must not trigger thread degradation
        (which would re-run the failing grid and raise late)."""
        grid = list(specs) + [
            ExperimentSpec(scene="lego", resolution_scale=SCALE, tag="boom")
        ]
        executor = SweepExecutor(jobs=2, mode="thread")
        with pytest.raises(SpecEvaluationError):
            executor.run(grid)
        assert executor.report.mode == "thread"  # never degraded

    def test_failed_sweep_leaves_no_orphaned_store_files(
        self, poisoned_run_point, specs, tmp_path
    ):
        store = ResultStore(tmp_path / "cache")
        grid = list(specs) + [
            ExperimentSpec(scene="lego", resolution_scale=SCALE, tag="boom")
        ]
        executor = SweepExecutor(jobs=2, mode="thread", store=store)
        with pytest.raises(SpecEvaluationError):
            executor.run(grid)
        # Atomic writes either landed or vanished; nothing half-written.
        assert list((tmp_path / "cache").rglob("*.tmp*")) == []
        # Store writes are all-or-nothing per sweep: the failing sweep
        # persisted nothing, so a retry recomputes from scratch.
        assert len(store) == 0


class TestPoolCreationFailure:
    def test_process_pool_failure_degrades_to_threads(
        self, specs, serial, monkeypatch
    ):
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _UnbuildablePool
        )
        executor = SweepExecutor(jobs=2, mode="process")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.mode == "thread"

    def test_total_pool_failure_degrades_to_serial(self, specs, serial, monkeypatch):
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _UnbuildablePool
        )
        monkeypatch.setattr(
            concurrent.futures, "ThreadPoolExecutor", _UnbuildablePool
        )
        executor = SweepExecutor(jobs=2, mode="process")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.mode == "serial"
        assert executor.report.pool == "none"

    def test_session_pool_failure_also_reaches_serial(
        self, specs, serial, monkeypatch
    ):
        """The persistent-pool path degrades exactly like the ephemeral one."""
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _UnbuildablePool
        )
        monkeypatch.setattr(
            concurrent.futures, "ThreadPoolExecutor", _UnbuildablePool
        )
        with Session(jobs=2) as session:
            result = session.run_sweep(specs, swept=["voxel_size"])
            assert result.table_dict() == serial.table_dict()
            assert session.last_execution.mode == "serial"


class TestWorkerDeath:
    def test_dying_workers_degrade_to_threads_and_recompute(
        self, specs, serial, monkeypatch
    ):
        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", _DyingPool)
        executor = SweepExecutor(jobs=2, mode="process")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.mode == "thread"

    def test_broken_persistent_pool_is_discarded(self, serial, monkeypatch):
        # A fig13-shaped grid large enough to pick process mode.
        grid = sweep(
            ExperimentSpec(scene="lego", resolution_scale=SCALE),
            cfus_per_hfu=(1, 2, 3, 4),
            ffus_per_hfu=(1, 2),
        )
        with Session(jobs=2) as session:
            with monkeypatch.context() as patched:
                patched.setattr(
                    concurrent.futures, "ProcessPoolExecutor", _DyingPool
                )
                session.run_sweep(grid)
            assert session.last_execution.mode == "thread"
            pool = session.worker_pool()
            # The broken process pool was discarded, the thread pool kept.
            assert pool.size("process") == 0
            assert pool.size("thread") >= 1
