"""Tests for the disk-backed result store and the trajectory helpers."""

import json

import pytest

from repro.api import ExperimentResult, ExperimentSpec, ResultStore, spec_key
from repro.api.store import (
    STORE_SCHEMA_VERSION,
    append_trajectory,
    atomic_write_json,
    resolve_store,
)


def make_result(value: float = 1.5) -> ExperimentResult:
    return ExperimentResult(
        name="point",
        title="test point",
        text="formatted body",
        metrics={"speedup": value},
        payload={"nested": {"list": [1, 2]}},
        meta={"label": "test"},
    )


class TestSpecKey:
    def test_stable_across_override_dict_ordering(self):
        a = ExperimentSpec(
            scene="lego",
            config={"voxel_size": 1.0, "tile_size": 8},
            arch_options={"cfus_per_hfu": 2, "ffus_per_hfu": 3},
        )
        b = ExperimentSpec(
            scene="lego",
            config={"tile_size": 8, "voxel_size": 1.0},
            arch_options={"ffus_per_hfu": 3, "cfus_per_hfu": 2},
        )
        assert spec_key(a) == spec_key(b)

    def test_equal_specs_equal_keys(self):
        assert spec_key(ExperimentSpec(scene="train")) == spec_key(
            ExperimentSpec(scene="train")
        )

    def test_distinct_specs_distinct_keys(self):
        base = ExperimentSpec(scene="lego")
        assert spec_key(base) != spec_key(base.with_options(arch="gscore"))
        assert spec_key(base) != spec_key(base.with_options(config={"voxel_size": 9.0}))
        assert spec_key(base) != spec_key(base.with_options(resolution_scale=0.5))

    def test_version_is_part_of_the_key(self):
        spec = ExperimentSpec(scene="lego")
        assert spec_key(spec, version="0.0.0") != spec_key(spec)


class TestResultStore:
    def test_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        spec = ExperimentSpec(scene="lego")
        result = make_result()
        assert store.get(spec) is None
        assert spec not in store
        store.put(spec, result)
        assert spec in store
        restored = store.get(spec)
        assert restored.to_dict() == result.to_dict()
        assert store.stats() == {"hits": 1, "misses": 1, "evicted": 0, "entries": 1}

    def test_version_bump_invalidates(self, tmp_path):
        spec = ExperimentSpec(scene="lego")
        old = ResultStore(tmp_path, version="1.0.0")
        old.put(spec, make_result())
        new = ResultStore(tmp_path, version="2.0.0")
        assert new.get(spec) is None
        assert new.misses == 1
        # The old entry is untouched — invalidation is by key, not deletion.
        assert old.get(spec) is not None

    def test_schema_version_in_key(self, tmp_path, monkeypatch):
        spec = ExperimentSpec(scene="lego")
        store = ResultStore(tmp_path)
        before = store.key(spec)
        monkeypatch.setattr("repro.api.store.STORE_SCHEMA_VERSION", STORE_SCHEMA_VERSION + 1)
        assert store.key(spec) != before

    def test_corrupted_entry_recovers(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = ExperimentSpec(scene="lego")
        store.put(spec, make_result())
        path = store.path(spec)
        path.write_text("{ truncated")
        assert store.get(spec) is None
        assert store.misses == 1
        assert not path.exists()  # damaged entry removed
        store.put(spec, make_result(2.0))
        assert store.get(spec).metrics["speedup"] == 2.0

    def test_entry_with_wrong_shape_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        spec = ExperimentSpec(scene="lego")
        path = store.path(spec)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"key": "not-the-right-key", "result": {}}))
        assert store.get(spec) is None
        assert not path.exists()

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(ExperimentSpec(scene="lego"), make_result())
        store.put(ExperimentSpec(scene="train"), make_result())
        assert len(store) == 2
        assert store.clear() == 2
        assert len(store) == 0


class TestEviction:
    def fill(self, store, count, start=0):
        specs = []
        for i in range(count):
            spec = ExperimentSpec(scene="lego", tag=f"entry-{start + i}")
            store.put(spec, make_result(float(i)))
            specs.append(spec)
        return specs

    def entry_bytes(self, tmp_path):
        probe = ResultStore(tmp_path / "probe")
        path = probe.put(ExperimentSpec(scene="lego", tag="probe"), make_result())
        return path.stat().st_size

    def test_put_enforces_the_size_cap(self, tmp_path):
        size = self.entry_bytes(tmp_path)
        store = ResultStore(tmp_path / "cache", max_bytes=3 * size + size // 2)
        self.fill(store, 6)
        assert len(store) <= 3
        total = sum(p.stat().st_size for p in (tmp_path / "cache").glob("*/*.json"))
        assert total <= store.max_bytes

    def test_eviction_is_lru_oldest_first(self, tmp_path):
        import os
        import time

        size = self.entry_bytes(tmp_path)
        store = ResultStore(tmp_path / "cache", max_bytes=2 * size + size // 2)
        first, second = self.fill(store, 2)
        # Age the first entry, then refresh it with a hit; the *second*
        # entry is now least recently used and must be the one evicted.
        stale = time.time() - 3600
        os.utime(store.path(first), (stale, stale))
        os.utime(store.path(second), (stale + 1, stale + 1))
        assert store.get(first) is not None  # touch refreshes recency
        (third,) = self.fill(store, 1, start=2)
        assert store.get(second) is None  # evicted -> miss
        assert store.get(first) is not None
        assert store.get(third) is not None
        assert store.evicted == 1

    def test_evicted_entry_recomputes_and_restores(self, tmp_path):
        import os
        import time

        size = self.entry_bytes(tmp_path)
        store = ResultStore(tmp_path / "cache", max_bytes=size + size // 2)
        first, = self.fill(store, 1)
        stale = time.time() - 3600
        os.utime(store.path(first), (stale, stale))
        self.fill(store, 1, start=1)
        assert store.get(first) is None  # hit behaviour after eviction: miss
        store.put(first, make_result(9.0))  # recompute path re-populates
        assert store.get(first).metrics["speedup"] == 9.0

    def test_gc_on_demand_with_explicit_cap(self, tmp_path):
        store = ResultStore(tmp_path / "cache")  # no cap configured
        self.fill(store, 4)
        assert store.gc()["removed"] == 0  # capless gc collects nothing
        summary = store.gc(max_bytes=0)
        assert summary["removed"] == 4
        assert summary["entries"] == 0
        assert len(store) == 0

    def test_put_never_evicts_the_entry_it_just_wrote(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_bytes=1)  # below one entry
        spec = ExperimentSpec(scene="lego", tag="only")
        store.put(spec, make_result())
        assert store.get(spec) is not None

    def test_negative_cap_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            ResultStore(tmp_path, max_bytes=-1)


class TestResolveStore:
    def test_none_and_false_disable(self):
        assert resolve_store(None) is None
        assert resolve_store(False) is None

    def test_path_and_instance(self, tmp_path):
        from_path = resolve_store(tmp_path / "cache")
        assert isinstance(from_path, ResultStore)
        assert resolve_store(from_path) is from_path

    def test_true_and_junk_rejected(self):
        with pytest.raises(ValueError, match="ambiguous"):
            resolve_store(True)
        with pytest.raises(TypeError, match="result store"):
            resolve_store(42)


class TestTrajectory:
    def test_append_accumulates(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_trajectory(path, {"run": 1})
        trajectory = append_trajectory(path, {"run": 2})
        assert [e["run"] for e in trajectory] == [1, 2]
        assert json.loads(path.read_text()) == trajectory
        # No stray temp files left behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_corrupt_trajectory_is_set_aside(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text("[{ truncated")
        trajectory = append_trajectory(path, {"run": 1})
        assert [e["run"] for e in trajectory] == [1]
        assert (tmp_path / "BENCH_test.json.corrupt").exists()

    def test_non_list_trajectory_is_set_aside(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        path.write_text(json.dumps({"not": "a list"}))
        assert [e["run"] for e in append_trajectory(path, {"run": 1})] == [1]

    def test_atomic_write_json(self, tmp_path):
        path = tmp_path / "sub" / "data.json"
        atomic_write_json(path, {"values": (1, 2)})
        assert json.loads(path.read_text()) == {"values": [1, 2]}
        assert path.read_text().endswith("\n")


class TestAdvisoryLock:
    def test_put_creates_and_reuses_the_lock_file(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        store.put(ExperimentSpec(scene="lego"), make_result())
        assert store.lock_path.exists()
        assert store.lock_path.name == ".lock"
        # The lock file never shadows an entry: reads and counts skip it.
        assert len(store) == 1
        assert store.get(ExperimentSpec(scene="lego")) is not None

    def test_concurrent_writers_serialize_on_the_lock(self, tmp_path):
        """Two processes putting into one store directory cannot corrupt it."""
        import concurrent.futures

        root = tmp_path / "cache"
        specs = [
            ExperimentSpec(scene="lego", config={"voxel_size": 0.2 + 0.2 * i})
            for i in range(6)
        ]
        with concurrent.futures.ProcessPoolExecutor(max_workers=3) as pool:
            list(pool.map(_put_one, [(str(root), i) for i in range(len(specs))]))
        store = ResultStore(root)
        assert len(store) == len(specs)
        for i, spec in enumerate(specs):
            cached = store.get(spec)
            assert cached is not None
            assert cached.metrics["speedup"] == float(i)

    def test_locked_gc_still_collects(self, tmp_path):
        store = ResultStore(tmp_path / "cache", max_bytes=0)
        store.put(ExperimentSpec(scene="lego"), make_result())
        summary = store.gc()
        # The cap is zero, but the freshest entry is protected only during
        # put; an explicit gc with no protection removes it.
        assert summary["entries"] == 0


def _put_one(args):
    root, index = args
    store = ResultStore(root)
    spec = ExperimentSpec(scene="lego", config={"voxel_size": 0.2 + 0.2 * index})
    store.put(spec, make_result(float(index)))
    return index
