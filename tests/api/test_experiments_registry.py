"""Registry coverage: every paper artifact returns a uniform result.

Each registered experiment is run in a narrowed, cheap configuration and
must return an :class:`ExperimentResult` whose ``to_json()`` round-trips.
The fig12/fig13 sweep re-implementations are additionally pinned to the
exact tables the pre-sweep implementation produced.
"""

import pytest

from repro.api import ExperimentSpec, Session
from repro.api.experiments import REGISTRY, experiment_names, get_experiment
from repro.api.result import ExperimentResult

#: Narrow, fast kwargs per experiment (full runs live in benchmarks/).
CHEAP_KWARGS = {
    "fig2": {"scenes": ("lego",)},
    "fig3": {"scenes": ("lego",)},
    "fig4": {"scenes": ("lego",)},
    "fig7": {"scene": "lego", "iterations": 40, "probe_every": 20},
    "tab1": {},
    "tab2": {"scenes": ("lego",), "algorithms": ("3dgs",)},
    "fig11": {"scenes": ("lego",), "algorithms": ("3dgs",)},
    "fig12": {"scene": "lego", "voxel_sizes": (0.4, 0.8)},
    "fig13": {"scene": "lego", "cfus": (1, 4), "ffus": (1,)},
    "claims": {"scene": "lego"},
    "trajectory": {"scene": "lego", "frames": 3, "resolution_scale": 0.25},
    "engine": {"num_gaussians": 400, "repeats": 1},
}

#: Exact small-configuration tables produced by the pre-sweep fig12/fig13
#: implementations (PR 1); the sweep-based re-implementations must match.
GOLDEN_FIG12 = (
    "Fig. 12 — voxel-size sensitivity (lego scene)\n"
    "voxel size  energy savings (x)  PSNR (dB)\n"
    "-----------------------------------------\n"
    "0.40        146.95              34.23    \n"
    "0.80        140.00              35.20    "
)
GOLDEN_FIG13 = (
    "Fig. 13 — speedup vs CFU/FFU count (lego scene)\n"
    "config  1 FFU   2 FFU \n"
    "----------------------\n"
    "1 CFU   41.41   41.41 \n"
    "4 CFU   112.99  139.64\n"
    "paper corners: 20.6x (1/1) ... 46.8x (4/4)"
)


@pytest.fixture(scope="module")
def session():
    return Session()


def test_registry_covers_every_paper_artifact():
    assert experiment_names() == [
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "tab1",
        "tab2",
        "fig11",
        "fig12",
        "fig13",
        "claims",
        "trajectory",
        "engine",
    ]
    for definition in REGISTRY.values():
        assert definition.description
    assert set(CHEAP_KWARGS) == set(REGISTRY)


def test_get_experiment_unknown():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


@pytest.mark.parametrize("name", list(CHEAP_KWARGS))
def test_experiment_returns_uniform_result(name, session):
    result = session.run(name, **CHEAP_KWARGS[name])
    assert isinstance(result, ExperimentResult)
    assert result.name == name
    assert result.title
    assert result.format()
    assert result.metrics, f"{name} reports no metrics"
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()
    assert restored.format() == result.format()


def test_fig12_sweep_table_matches_pre_sweep_output(session):
    from repro.analysis.sensitivity import run_fig12

    result = run_fig12(scene="lego", voxel_sizes=(0.4, 0.8), session=session)
    assert result.format() == GOLDEN_FIG12


def test_fig13_sweep_table_matches_pre_sweep_output(session):
    from repro.analysis.sensitivity import run_fig13

    result = run_fig13(scene="lego", cfus=(1, 4), ffus=(1, 2), session=session)
    assert result.format() == GOLDEN_FIG13
