"""Tests for ExperimentResult / SweepResult serialization and formatting."""

import json

import numpy as np
import pytest

from repro.api.result import ExperimentResult, SweepResult, jsonify


class TestJsonify:
    def test_numpy_scalars_and_arrays(self):
        data = jsonify(
            {
                "f": np.float64(1.5),
                "i": np.int32(3),
                "b": np.bool_(True),
                "a": np.arange(3),
            }
        )
        assert data == {"f": 1.5, "i": 3, "b": True, "a": [0, 1, 2]}
        assert json.loads(json.dumps(data)) == data

    def test_tuples_and_int_keys(self):
        data = jsonify({1: (2, 3), "nested": {4: {"x": (5,)}}})
        assert data == {"1": [2, 3], "nested": {"4": {"x": [5]}}}
        assert json.loads(json.dumps(data)) == data

    def test_unserializable_type(self):
        with pytest.raises(TypeError, match="cannot serialize"):
            jsonify({"bad": object()})


def make_result(name="demo", tag="t0"):
    return ExperimentResult(
        name=name,
        title="Demo experiment",
        text="Demo experiment\nvalue 1.50",
        metrics={"speedup": np.float64(1.5), "fps": 60},
        payload={"grid": {1: {2: 3.0}}, "series": (0.1, 0.2)},
        meta={"label": tag, "tag": tag},
    )


class TestExperimentResult:
    def test_format_returns_text(self):
        result = make_result()
        assert result.format() == result.text

    def test_metrics_normalized_to_float(self):
        result = make_result()
        assert result.metrics == {"speedup": 1.5, "fps": 60.0}
        assert isinstance(result.metrics["fps"], float)

    def test_metric_lookup(self):
        result = make_result()
        assert result.metric("speedup") == 1.5
        with pytest.raises(KeyError, match="unknown metric"):
            result.metric("latency")

    def test_payload_is_json_native(self):
        result = make_result()
        assert result.payload == {"grid": {"1": {"2": 3.0}}, "series": [0.1, 0.2]}

    def test_json_roundtrip_is_lossless(self):
        result = make_result()
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()
        assert restored.format() == result.format()
        assert restored.metrics == result.metrics

    def test_roundtrip_survives_infinity(self):
        result = ExperimentResult(
            name="x", title="x", text="x", metrics={"ratio": float("inf")}
        )
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.metrics["ratio"] == float("inf")


class TestSweepResult:
    def test_collection_interface(self):
        sweep = SweepResult(results=[make_result(tag="a"), make_result(tag="b")])
        assert len(sweep) == 2
        assert [r.meta["label"] for r in sweep] == ["a", "b"]
        assert sweep[1].meta["label"] == "b"

    def test_metric_column(self):
        sweep = SweepResult(results=[make_result(), make_result()])
        assert sweep.metric("speedup") == [1.5, 1.5]

    def test_table_and_format(self):
        sweep = SweepResult(
            results=[make_result(tag="a"), make_result(tag="b")], swept=["voxel_size"]
        )
        table = sweep.table(["speedup"])
        assert "point" in table and "speedup" in table
        assert "a" in table and "b" in table
        assert "voxel_size" in sweep.format()

    def test_table_rejects_metric_missing_everywhere(self):
        sweep = SweepResult(results=[make_result(), make_result()])
        with pytest.raises(KeyError, match="unknown metric"):
            sweep.table(["frame_time"])  # typo for a real metric name

    def test_table_renders_placeholder_for_partially_missing_metric(self):
        partial = make_result(tag="gpu")
        partial.metrics.pop("speedup")
        sweep = SweepResult(results=[make_result(tag="accel"), partial])
        table = sweep.table(["speedup"])
        assert "-" in table

    def test_json_roundtrip(self):
        sweep = SweepResult(results=[make_result()], swept=["voxel_size"])
        restored = SweepResult.from_json(sweep.to_json())
        assert restored.to_dict() == sweep.to_dict()
        assert restored.swept == ["voxel_size"]
