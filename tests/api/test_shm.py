"""Lifecycle suite for the zero-copy shared-memory layer.

The promises under test: a :class:`~repro.api.shm.SharedArrayHandle`
round-trips exact bytes through pickling and reattach; a
:class:`~repro.api.shm.ShmRegistry` unlinks every segment it created —
after ``Session.close()``, after a worker dies mid-render, and after a
``KeyboardInterrupt`` lands in the middle of a parallel dispatch; and the
warm process workers of a session's persistent pool adopt broadcast
contexts instead of rebuilding them (``context_rebuilds == 0`` on the
second identical sweep).
"""

import concurrent.futures
import pickle
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.api import (
    ExperimentSpec,
    Session,
    SweepExecutor,
    leaked_segments,
    shm_available,
    sweep,
)
from repro.api.shm import SharedMemoryUnavailable, ShmPackage, ShmRegistry
from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine import tile_parallel
from repro.engine.bench import streaming_stats_equal
from tests.conftest import make_camera, make_model

needs_shm = pytest.mark.skipif(not shm_available(), reason="no shared memory")


@pytest.fixture
def shm_baseline():
    """Segments alive before the test: other live registries (the process
    default session, module fixtures) legitimately keep segments open, so
    leak assertions compare against this snapshot, not against empty."""
    return set(leaked_segments())


def assert_no_new_segments(baseline):
    assert set(leaked_segments()) <= baseline


def make_renderer():
    model = make_model(num_gaussians=250, extent=4.0, seed=12)
    renderer = StreamingRenderer(model, StreamingConfig(voxel_size=1.0, use_vq=False))
    return renderer, make_camera(width=48, height=32)


class _DyingPool:
    """A process pool whose futures fail like dead workers."""

    def __init__(self, max_workers=None, mp_context=None):
        pass

    def submit(self, fn, *args, **kwargs):
        future = concurrent.futures.Future()
        future.set_exception(BrokenProcessPool("worker died mid-render"))
        return future

    def shutdown(self, wait=True, **kwargs):
        pass


class _InterruptedPool:
    """A pool hit by Ctrl-C at dispatch time."""

    def __init__(self, max_workers=None, mp_context=None):
        pass

    def submit(self, fn, *args, **kwargs):
        raise KeyboardInterrupt

    def shutdown(self, wait=True, **kwargs):
        pass


class TestHandleRoundTrip:
    @needs_shm
    def test_reattach_round_trips_exact_bytes(self, shm_baseline):
        rng = np.random.default_rng(7)
        payload = rng.standard_normal((512, 33))  # > the 32 KiB threshold
        with ShmRegistry() as registry:
            handle = registry.publish(payload)
            assert handle.is_shared
            clone = pickle.loads(pickle.dumps(handle))
            attached = clone.array()
            assert attached.tobytes() == payload.tobytes()
            assert attached.dtype == payload.dtype
            assert attached.shape == payload.shape
            # The handle itself travels as metadata, not as the buffer.
            assert len(pickle.dumps(handle)) < payload.nbytes / 100
        assert_no_new_segments(shm_baseline)

    @needs_shm
    def test_package_round_trips_object_graph(self, shm_baseline):
        rng = np.random.default_rng(3)
        graph = {
            "big": rng.standard_normal(20_000),
            "small": np.arange(4),
            "meta": ("x", 1.5),
        }
        with ShmRegistry() as registry:
            package = ShmPackage.pack(graph, registry)
            assert len(package.segments) >= 1
            assert package.pickled_bytes < graph["big"].nbytes / 10
            # Views are valid only while the registry lives (see
            # SharedArrayHandle.array): compare before it closes.
            out = pickle.loads(pickle.dumps(package)).unpack()
            np.testing.assert_array_equal(out["big"], graph["big"])
            np.testing.assert_array_equal(out["small"], graph["small"])
            assert out["meta"] == graph["meta"]
        assert_no_new_segments(shm_baseline)

    def test_inline_fallback_when_shm_unavailable(self, monkeypatch):
        monkeypatch.setattr("repro.api.shm._shared_memory", None)
        registry = ShmRegistry()
        handle = registry.publish(np.arange(100_000, dtype=np.float64))
        assert not handle.is_shared
        np.testing.assert_array_equal(
            handle.array(), np.arange(100_000, dtype=np.float64)
        )
        assert registry.stats()["inline_fallbacks"] == 1
        with pytest.raises(SharedMemoryUnavailable):
            ShmRegistry(fallback_inline=False).publish(np.arange(100_000))
        registry.close()


@needs_shm
class TestConsolidatedSegment:
    """Sub-threshold arrays bundle into one consolidated segment."""

    def test_small_arrays_leave_the_payload(self, shm_baseline):
        rng = np.random.default_rng(11)
        graph = {
            "big": rng.standard_normal(20_000),
            "small": [rng.standard_normal(64) for _ in range(20)],
            "ints": np.arange(200, dtype=np.int32),
        }
        with ShmRegistry() as registry:
            bundled = ShmPackage.pack(graph, registry)
            plain = ShmPackage.pack(graph, registry, consolidate_min=None)
            assert bundled.consolidated is not None
            assert bundled.consolidated_arrays == 21
            small_bytes = sum(a.nbytes for a in graph["small"]) + graph["ints"].nbytes
            assert bundled.consolidated_bytes == small_bytes
            # The reduction the bundle buys: small arrays no longer ride
            # pickled in the payload.
            assert bundled.pickled_bytes < plain.pickled_bytes - small_bytes // 2
            out = pickle.loads(pickle.dumps(bundled)).unpack()
            np.testing.assert_array_equal(out["big"], graph["big"])
            for got, expected in zip(out["small"], graph["small"]):
                np.testing.assert_array_equal(got, expected)
            np.testing.assert_array_equal(out["ints"], graph["ints"])
            assert not out["small"][0].flags.writeable
        assert_no_new_segments(shm_baseline)

    def test_duplicate_references_share_one_entry(self):
        shared = np.arange(100, dtype=np.float64)
        graph = {"a": shared, "b": shared, "c": [shared, shared]}
        with ShmRegistry() as registry:
            package = ShmPackage.pack(graph, registry)
            assert package.consolidated_arrays == 1
            out = package.unpack()
            assert out["a"] is out["b"] is out["c"][0] is out["c"][1]
            np.testing.assert_array_equal(out["a"], shared)

    def test_mixed_dtypes_reconstruct_aligned(self):
        graph = [
            np.arange(9, dtype=np.int8),  # odd size forces padding
            np.arange(33, dtype=np.float32),
            np.arange(17, dtype=np.float64).reshape(1, 17),
            np.array([[1, 2], [3, 4]], dtype=np.uint16),
        ]
        with ShmRegistry() as registry:
            out = ShmPackage.pack(graph, registry).unpack()
            for got, expected in zip(out, graph):
                assert got.dtype == expected.dtype
                assert got.shape == expected.shape
                np.testing.assert_array_equal(got, expected)

    def test_tiny_arrays_stay_pickled(self):
        graph = {"tiny": np.arange(3, dtype=np.int8)}  # < consolidate floor
        with ShmRegistry() as registry:
            package = ShmPackage.pack(graph, registry)
            assert package.consolidated is None
            assert package.consolidated_arrays == 0
            np.testing.assert_array_equal(package.unpack()["tiny"], graph["tiny"])

    def test_sweep_report_records_consolidation(self, shm_baseline):
        specs = sweep(
            ExperimentSpec(scene="lego", resolution_scale=0.5),
            num_hfu=(2, 4, 6, 8),
        )
        session = Session(seed=3, jobs=2)
        try:
            result = session.run_sweep(specs, swept=["num_hfu"], jobs=2)
            report = result.meta["execution"]
            if report["mode"] == "process":  # not degraded on this host
                assert report["consolidated_arrays"] > 0
                assert report["consolidated_bytes"] > 0
                # The consolidated remainder dwarfs what is still pickled.
                assert report["pickled_bytes"] < report["consolidated_bytes"]
        finally:
            session.close()
        assert_no_new_segments(shm_baseline)


@needs_shm
class TestRegistryLifecycle:
    def test_close_unlinks_everything(self, shm_baseline):
        registry = ShmRegistry()
        for seed in range(3):
            registry.publish(np.full(20_000, float(seed)))
        assert registry.stats()["segments_active"] == 3
        registry.close()
        assert registry.stats()["segments_active"] == 0
        assert_no_new_segments(shm_baseline)
        with pytest.raises(RuntimeError):
            registry.publish(np.zeros(10))

    def test_session_close_unlinks_context_packages(self, shm_baseline):
        session = Session(seed=5)
        spec = ExperimentSpec(scene="lego", resolution_scale=0.5)
        package = session.context_package(spec)
        assert len(package.segments) >= 1
        assert session.context_package(spec) is package  # cached per key
        session.close()
        assert_no_new_segments(shm_baseline)


@needs_shm
class TestRenderFaults:
    def test_successful_parallel_render_leaves_no_segments(self, shm_baseline):
        renderer, camera = make_renderer()
        output = renderer.render(camera, tile_workers=2)
        assert output.telemetry["tile_mode"] in ("process", "thread")
        assert_no_new_segments(shm_baseline)

    def test_worker_death_degrades_to_threads_without_leaks(self, monkeypatch, shm_baseline):
        renderer, camera = make_renderer()
        serial = renderer.render(camera)
        monkeypatch.setattr(tile_parallel, "_tile_pool", lambda workers: _DyingPool())
        degraded = renderer.render(camera, tile_workers=2)
        assert degraded.telemetry["tile_mode"] == "thread"
        assert "tile_mode_degraded" in degraded.telemetry
        np.testing.assert_array_equal(degraded.image, serial.image)
        equal, detail = streaming_stats_equal(serial.stats, degraded.stats)
        assert equal, detail
        assert_no_new_segments(shm_baseline)

    def test_keyboard_interrupt_mid_dispatch_leaves_no_segments(self, monkeypatch, shm_baseline):
        renderer, camera = make_renderer()
        monkeypatch.setattr(
            tile_parallel, "_tile_pool", lambda workers: _InterruptedPool()
        )
        with pytest.raises(KeyboardInterrupt):
            renderer.render(camera, tile_workers=2)
        assert_no_new_segments(shm_baseline)
        # The renderer is still usable afterwards on the serial path.
        renderer.render(camera)


@needs_shm
class TestWarmContexts:
    def test_repeated_sweep_rebuilds_nothing(self, shm_baseline):
        specs = sweep(
            ExperimentSpec(scene="lego", resolution_scale=0.5),
            num_hfu=(1, 2, 3, 4, 5, 6, 7, 8),
        )
        session = Session(seed=9)
        try:
            serial = session.run_many(specs)
            reports = []
            for _ in range(2):
                executor = SweepExecutor(jobs=2, mode="process", split_threshold=8)
                result = executor.run(specs, swept=["num_hfu"], session=session)
                reports.append(executor.report)
                assert [r.metrics for r in result.results] == [
                    r.metrics for r in serial
                ]
            cold, warm = reports
            if warm.mode == "process":  # not degraded on this host
                assert cold.shm_segments >= 1
                assert warm.context_rebuilds == 0
                assert warm.warm_contexts >= 1
        finally:
            session.close()
        assert_no_new_segments(shm_baseline)

    def test_executor_worker_death_leaves_no_segments(self, monkeypatch, shm_baseline):
        specs = sweep(
            ExperimentSpec(scene="lego", resolution_scale=0.5),
            num_hfu=(1, 2, 3, 4, 5, 6, 7, 8),
        )
        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _DyingPool
        )
        session = Session(seed=9)
        try:
            executor = SweepExecutor(jobs=2, mode="process", split_threshold=8)
            result = executor.run(specs, swept=["num_hfu"], session=session)
            assert executor.report.degraded_from == "process"
            assert executor.report.mode in ("thread", "serial")
            assert len(result.results) == len(specs)
        finally:
            session.close()
        assert_no_new_segments(shm_baseline)
