"""Tests for the Session front-end: caching, point runs, sweeps."""

import pytest

from repro.api import ExperimentSpec, Session, get_default_session, reset_default_session
from repro.api.result import ExperimentResult, SweepResult
from repro.core.config import StreamingConfig

#: A reduced evaluation resolution keeps each context cheap.
SCALE = 0.5


@pytest.fixture(scope="module")
def session():
    return Session()


@pytest.fixture(scope="module")
def lego_spec():
    return ExperimentSpec(scene="lego", resolution_scale=SCALE)


class TestContexts:
    def test_context_is_cached(self, session):
        first = session.context("lego", resolution_scale=SCALE)
        again = session.context("lego", resolution_scale=SCALE)
        assert again is first
        assert session.context_hits >= 1

    def test_context_voxel_override_is_distinct(self, session):
        default = session.context("lego", resolution_scale=SCALE)
        coarse = session.context("lego", voxel_size=0.8, resolution_scale=SCALE)
        assert coarse is not default
        assert coarse.streaming_config.voxel_size == 0.8

    def test_context_accepts_config_mapping(self, session):
        context = session.context(
            "lego", resolution_scale=SCALE, config={"blend_kernel": "reference"}
        )
        assert context.streaming_config.blend_kernel == "reference"
        assert context.streaming_config.voxel_size == 0.4  # scene default

    def test_context_accepts_full_config(self, session):
        config = StreamingConfig(voxel_size=0.8)
        context = session.context("lego", resolution_scale=SCALE, config=config)
        # Equal configs share one cache entry, so identity is not guaranteed.
        assert context.streaming_config == config

    def test_voxel_size_and_config_are_exclusive(self, session):
        with pytest.raises(ValueError, match="not both"):
            session.context("lego", voxel_size=1.0, config={"tile_size": 8})

    def test_unknown_scene(self, session):
        with pytest.raises(KeyError, match="unknown scene"):
            session.context("not-a-scene")

    def test_sessions_are_isolated(self, session):
        other = Session()
        assert other.context("lego", resolution_scale=SCALE) is not session.context(
            "lego", resolution_scale=SCALE
        )
        assert other.service is not session.service

    def test_isolated_probe_session(self, session):
        probe = session.isolated(max_renderers=1)
        assert probe.service is not session.service
        assert probe.service.max_renderers == 1


class TestPointRuns:
    def test_run_point_metrics(self, session, lego_spec):
        result = session.run(lego_spec)
        assert isinstance(result, ExperimentResult)
        assert result.name == "point"
        assert result.metrics["speedup"] > 1.0
        assert result.metrics["energy_savings"] > 1.0
        assert result.metrics["baseline_psnr"] > 20.0
        assert result.metrics["area_mm2"] > 0
        assert result.payload["spec"]["scene"] == "lego"
        assert "experiment point" in result.format()

    def test_run_point_json_roundtrip(self, session, lego_spec):
        result = session.run(lego_spec)
        restored = ExperimentResult.from_json(result.to_json())
        assert restored.to_dict() == result.to_dict()

    def test_gpu_arch_is_the_baseline(self, session, lego_spec):
        result = session.run(lego_spec.with_options(arch="gpu"))
        assert result.metrics["speedup"] == pytest.approx(1.0)
        assert result.metrics["energy_savings"] == pytest.approx(1.0)
        assert "area_mm2" not in result.metrics

    def test_gscore_arch(self, session, lego_spec):
        result = session.run(lego_spec.with_options(arch="gscore"))
        assert result.metrics["speedup"] > 1.0
        assert "area_mm2" not in result.metrics

    def test_overrides_apply_to_spec(self, session, lego_spec):
        result = session.run(lego_spec, arch="wo_cgf")
        assert result.payload["spec"]["arch"] == "wo_cgf"

    def test_points_share_context(self, session, lego_spec):
        before = session.context_misses
        session.run(lego_spec.with_options(arch="gscore"))
        session.run(lego_spec.with_options(arch="wo_cgf"))
        assert session.context_misses == before


class TestSweeps:
    def test_sweep_runs_grid(self, session, lego_spec):
        study = session.sweep(lego_spec, voxel_size=(0.4, 0.8))
        assert isinstance(study, SweepResult)
        assert len(study) == 2
        assert study.swept == ["voxel_size"]
        assert all(value > 1.0 for value in study.metric("energy_savings"))
        assert study.labels() == ["voxel_size=0.4", "voxel_size=0.8"]

    def test_sweep_arch_options(self, session, lego_spec):
        study = session.sweep(lego_spec, cfus_per_hfu=(1, 4))
        assert study.metric("speedup")[1] >= study.metric("speedup")[0]
        assert study.metric("area_mm2")[1] > study.metric("area_mm2")[0]


class TestRegistryRuns:
    def test_run_named_experiment(self, session):
        result = session.run("tab1")
        assert isinstance(result, ExperimentResult)
        assert result.name == "tab1"
        assert "Table I" in result.format()
        assert result.metrics["total_mm2"] == pytest.approx(5.37, abs=0.01)

    def test_run_unknown_name(self, session):
        with pytest.raises(KeyError, match="unknown experiment"):
            session.run("fig99")

    def test_run_named_rejects_unknown_kwargs(self, session):
        with pytest.raises(TypeError):
            session.run("tab1", cfus_per_hfu=4)


class TestLifecycle:
    def test_worker_pool_is_lazy_and_shared(self):
        session = Session()
        assert session.stats()["pool"] is None
        pool = session.worker_pool()
        assert session.worker_pool() is pool
        session.close()

    def test_close_shuts_the_pool_down(self):
        session = Session()
        pool = session.worker_pool()
        executor = pool.executor("thread", 2)
        assert executor.submit(int, "7").result() == 7
        session.close()
        assert pool.closed
        with pytest.raises(RuntimeError, match="closed"):
            pool.executor("thread", 2)

    def test_close_drops_contexts_and_renderers(self):
        session = Session()
        session.context("lego", resolution_scale=SCALE)
        assert session.stats()["contexts_alive"] == 1
        session.close()
        assert session.stats()["contexts_alive"] == 0
        assert session.stats()["service"]["renderers_alive"] == 0

    def test_closed_session_remains_usable(self):
        session = Session()
        session.close()
        fresh = session.worker_pool()
        assert not fresh.closed
        session.close()

    def test_context_manager_closes(self):
        with Session() as session:
            pool = session.worker_pool()
        assert pool.closed

    def test_adopt_context_feeds_spec_context(self, session, lego_spec):
        donor = session.spec_context(lego_spec)
        other = Session()
        other.adopt_context(lego_spec, donor)
        assert other.spec_context(lego_spec) is donor
        assert other.context_misses == 0


class TestDefaultSession:
    def test_default_session_is_shared_and_resettable(self):
        reset_default_session()
        first = get_default_session()
        assert get_default_session() is first
        reset_default_session()
        assert get_default_session() is not first

    def test_default_session_wraps_default_service(self):
        from repro.engine.service import get_default_service

        reset_default_session()
        assert get_default_session().service is get_default_service()
