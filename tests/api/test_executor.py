"""Tests for the sharded sweep executor and batched ``Session.run_many``."""

import pytest

from repro.api import ExperimentSpec, ResultStore, Session, SweepExecutor, sweep
from repro.api.executor import (
    PROCESS_MIN_SPECS,
    SHARD_SPLIT_THRESHOLD,
    ShardUnit,
    context_group_key,
)


#: Reduced evaluation resolution keeps each scene context cheap.
SCALE = 0.5


@pytest.fixture(scope="module")
def specs():
    return sweep(
        ExperimentSpec(scene="lego", resolution_scale=SCALE), voxel_size=(0.4, 0.8)
    )


@pytest.fixture(scope="module")
def serial(specs):
    return Session().run_sweep(specs, swept=["voxel_size"])


class TestContextGrouping:
    def test_group_key_tracks_context_inputs(self):
        base = ExperimentSpec(scene="lego", resolution_scale=SCALE)
        assert context_group_key(base) == context_group_key(
            base.with_options(arch="gscore", tag="other")
        )
        assert context_group_key(base) != context_group_key(
            base.with_options(config={"voxel_size": 9.0})
        )
        assert context_group_key(base) != context_group_key(
            base.with_options(scene="train")
        )

    def test_shard_preserves_first_seen_order(self, specs):
        executor = SweepExecutor()
        interleaved = [specs[0], specs[1], specs[0], specs[1]]
        shards = executor.shard(interleaved)
        assert len(shards) == 2
        assert [[i for i, _ in members] for members in shards.values()] == [[0, 2], [1, 3]]


class TestRunMany:
    def test_results_in_input_order_with_one_build_per_context(self):
        session = Session()
        base = ExperimentSpec(scene="lego", resolution_scale=SCALE)
        coarse = base.with_options(config={"voxel_size": 0.8})
        # Interleave two contexts x two archs: four points, two contexts.
        batch = [
            base,
            coarse,
            base.with_options(arch="gscore"),
            coarse.with_options(arch="gscore"),
        ]
        results = session.run_many(batch)
        assert [r.payload["spec"]["arch"] for r in results] == [
            "streaminggs",
            "streaminggs",
            "gscore",
            "gscore",
        ]
        assert [r.payload["spec"]["config"].get("voxel_size") for r in results] == [
            None,
            0.8,
            None,
            0.8,
        ]
        assert session.context_misses == 2
        assert session.points_run == 4


class TestModeSelection:
    def test_explicit_modes_win(self):
        assert SweepExecutor(jobs=4, mode="serial").choose_mode(8, 80) == "serial"
        assert SweepExecutor(jobs=4, mode="process").choose_mode(2, 2) == "process"

    def test_auto_serial_for_one_job_or_one_shard(self):
        assert SweepExecutor(jobs=1).choose_mode(8, 80) == "serial"
        assert SweepExecutor(jobs=4).choose_mode(1, 80) == "serial"

    def test_auto_threads_for_small_grids(self):
        assert SweepExecutor(jobs=2).choose_mode(2, PROCESS_MIN_SPECS - 1) == "thread"

    def test_auto_processes_for_large_grids(self):
        assert SweepExecutor(jobs=2).choose_mode(4, PROCESS_MIN_SPECS) == "process"

    def test_invalid_arguments(self):
        with pytest.raises(ValueError, match="jobs"):
            SweepExecutor(jobs=0)
        with pytest.raises(ValueError, match="mode"):
            SweepExecutor(mode="fleet")


class TestParallelEquality:
    def test_thread_pool_matches_serial(self, specs, serial):
        executor = SweepExecutor(jobs=2, mode="thread")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.mode == "thread"
        assert executor.report.shards == 2

    def test_process_pool_matches_serial(self, specs, serial):
        executor = SweepExecutor(jobs=2, mode="process")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()

    def test_broken_process_pool_degrades_to_threads(self, specs, serial, monkeypatch):
        import concurrent.futures
        from concurrent.futures.process import BrokenProcessPool

        class BrokenPool:
            def __init__(self, max_workers=None):
                pass

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                return False

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("workers cannot be spawned")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor", BrokenPool)
        executor = SweepExecutor(jobs=2, mode="process")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.mode == "thread"

    def test_merge_order_is_input_order(self, specs, serial):
        reversed_result = SweepExecutor(jobs=2, mode="thread").run(
            list(reversed(specs)), swept=["voxel_size"]
        )
        assert [r.meta["tag"] for r in reversed_result] == [
            r.meta["tag"] for r in reversed(serial.results)
        ]


class TestStoreIntegration:
    def test_cold_then_warm(self, tmp_path, specs, serial):
        store = ResultStore(tmp_path / "cache")
        cold_executor = SweepExecutor(jobs=2, store=store)
        cold = cold_executor.run(specs, swept=["voxel_size"])
        assert cold.table_dict() == serial.table_dict()
        assert cold_executor.report.cache_misses == len(specs)
        assert cold_executor.report.cache_hits == 0
        assert len(store) == len(specs)

        warm_session = Session(store=store)
        warm = warm_session.run_sweep(specs, swept=["voxel_size"], jobs=2)
        assert warm.table_dict() == serial.table_dict()
        # Every point came from disk: no renders, no contexts built.
        assert warm_session.service.requests_served == 0
        assert warm_session.context_misses == 0
        assert warm_session.stats()["points_run"] == 0

    def test_partial_warm_store(self, tmp_path, specs, serial):
        store = ResultStore(tmp_path / "cache")
        store.put(specs[0], serial.results[0])
        executor = SweepExecutor(store=store)
        result = executor.run(specs, swept=["voxel_size"])
        assert result.table_dict() == serial.table_dict()
        assert executor.report.cache_hits == 1
        assert executor.report.cache_misses == len(specs) - 1
        assert len(store) == len(specs)

    def test_store_from_path(self, tmp_path):
        executor = SweepExecutor(store=tmp_path / "cache")
        assert isinstance(executor.store, ResultStore)

    def test_store_false_disables(self):
        assert SweepExecutor(store=False).store is None

    def test_store_true_is_rejected(self):
        with pytest.raises(ValueError, match="ambiguous"):
            SweepExecutor(store=True)


class TestSessionSweepParams:
    def test_sweep_with_jobs_and_cache(self, tmp_path, specs, serial):
        session = Session()
        result = session.sweep(
            ExperimentSpec(scene="lego", resolution_scale=SCALE),
            jobs=2,
            cache=tmp_path / "cache",
            voxel_size=(0.4, 0.8),
        )
        assert result.table_dict() == serial.table_dict()

    def test_cache_false_disables_session_store(self, tmp_path, specs):
        session = Session(store=tmp_path / "cache")
        session.run_sweep(specs[:1], cache=False)
        assert len(session.store) == 0

    def test_cache_true_is_rejected(self, specs):
        with pytest.raises(ValueError, match="ambiguous"):
            Session().run_sweep(specs[:1], cache=True)

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            Session(jobs=0)


class TestShardSplitting:
    def make_grid(self, n=32):
        base = ExperimentSpec(scene="lego", resolution_scale=SCALE)
        return sweep(
            base, cfus_per_hfu=list(range(1, 9)), ffus_per_hfu=list(range(1, 5))
        )[:n]

    def test_split_produces_sub_shards_with_broadcast_flag(self):
        executor = SweepExecutor(jobs=4)
        members = list(enumerate(self.make_grid(32)))
        units = executor.split([members])
        assert len(units) == 4
        assert all(unit.is_sub_shard for unit in units)
        assert [len(unit.members) for unit in units] == [8, 8, 8, 8]
        # Contiguous split: concatenation reproduces the original order.
        flattened = [pair for unit in units for pair in unit.members]
        assert flattened == members

    def test_small_shards_are_not_split(self):
        executor = SweepExecutor(jobs=4)
        members = list(enumerate(self.make_grid(SHARD_SPLIT_THRESHOLD - 1)))
        units = executor.split([members])
        assert len(units) == 1
        assert not units[0].is_sub_shard

    def test_split_never_exceeds_jobs(self):
        executor = SweepExecutor(jobs=2)
        units = executor.split([list(enumerate(self.make_grid(32)))])
        assert len(units) == 2

    def test_split_disabled_by_zero_threshold(self):
        executor = SweepExecutor(jobs=4, split_threshold=0)
        units = executor.split([list(enumerate(self.make_grid(32)))])
        assert len(units) == 1

    def test_single_context_grid_fans_out(self):
        """A fig13-shaped grid (one scene context, many cheap specs) must
        not collapse onto one worker."""
        specs = self.make_grid(32)
        serial = Session().run_sweep(specs)
        executor = SweepExecutor(jobs=2, mode="thread")
        result = executor.run(specs)
        assert result.table_dict() == serial.table_dict()
        report = result.meta["execution"]
        assert report["shards"] == 1
        assert report["sub_shards"] >= 2
        assert report["split_shards"] == 1
        assert report["broadcast_contexts"] == 1
        assert report["workers"] == 2

    def test_broadcast_context_is_built_once_in_the_calling_session(self):
        session = Session(jobs=2)
        specs = self.make_grid(32)
        session.run_sweep(specs)
        # The split shard's context was built by the caller (broadcast),
        # not once per sub-shard worker.
        assert session.context_misses == 1
        session.close()


class TestPersistentPool:
    def test_second_sweep_reuses_the_pool(self, specs, serial):
        with Session(jobs=2) as session:
            first = session.run_sweep(specs, swept=["voxel_size"])
            assert first.meta["execution"]["pool"] == "persistent"
            assert first.meta["execution"]["worker_reuse"] == 0
            second = session.run_sweep(specs, swept=["voxel_size"])
            assert second.meta["execution"]["worker_reuse"] >= 1
            assert first.table_dict() == serial.table_dict()
            assert second.table_dict() == serial.table_dict()
            assert session.worker_pool().created == 1

    def test_executor_without_session_uses_ephemeral_pool(self, specs):
        executor = SweepExecutor(jobs=2, mode="thread")
        result = executor.run(specs, swept=["voxel_size"])
        assert result.meta["execution"]["pool"] == "ephemeral"

    def test_serial_sweep_never_creates_a_pool(self, specs):
        session = Session()
        session.run_sweep(specs, swept=["voxel_size"])
        assert session.stats()["pool"] is None


class TestExecutionReport:
    def test_report_reaches_sweep_meta(self, specs):
        session = Session()
        result = session.run_sweep(specs, swept=["voxel_size"])
        report = result.meta["execution"]
        assert report["mode"] == "serial"
        assert report["specs"] == len(specs)
        assert report["shards"] == 2
        assert len(report["shard_times_s"]) == report["sub_shards"]
        assert report["wall_time_s"] > 0
        assert session.last_execution.to_dict() == report

    def test_summary_line_is_greppable(self, specs):
        session = Session()
        session.run_sweep(specs, swept=["voxel_size"])
        summary = session.last_execution.summary()
        for token in ("mode=", "shards=", "sub_shards=", "pool=", "reuse=", "wall="):
            assert token in summary

    def test_store_counters_in_report(self, tmp_path, specs):
        store = ResultStore(tmp_path / "cache")
        session = Session(store=store)
        cold = session.run_sweep(specs, swept=["voxel_size"])
        warm = session.run_sweep(specs, swept=["voxel_size"])
        assert cold.meta["execution"]["cache_misses"] == len(specs)
        assert warm.meta["execution"]["cache_hits"] == len(specs)
        assert warm.meta["execution"]["shards"] == 0


class TestAdaptiveSplitThreshold:
    def test_no_observation_uses_static_default(self):
        from repro.api.executor import adaptive_split_threshold

        assert adaptive_split_threshold(None) == SHARD_SPLIT_THRESHOLD
        assert adaptive_split_threshold(0.0) == SHARD_SPLIT_THRESHOLD

    def test_expensive_specs_lower_the_threshold(self):
        from repro.api.executor import SUB_SHARD_MIN_SPECS, adaptive_split_threshold

        # 2 s per spec: even tiny shards are worth splitting, down to the
        # dispatch-overhead floor.
        assert adaptive_split_threshold(2.0) == SUB_SHARD_MIN_SPECS

    def test_cheap_specs_keep_the_static_cutoff(self):
        from repro.api.executor import adaptive_split_threshold

        # Microsecond specs: splitting would be pure overhead; the policy
        # never exceeds the static default.
        assert adaptive_split_threshold(1e-6) == SHARD_SPLIT_THRESHOLD

    def test_threshold_scales_with_observed_cost(self):
        from repro.api.executor import (
            SPLIT_MIN_SHARD_SECONDS,
            SUB_SHARD_MIN_SPECS,
            adaptive_split_threshold,
        )

        mid = adaptive_split_threshold(SPLIT_MIN_SHARD_SECONDS / 6)
        assert SUB_SHARD_MIN_SPECS <= mid <= SHARD_SPLIT_THRESHOLD
        assert adaptive_split_threshold(10.0) <= mid

    def test_session_seeds_threshold_from_last_execution(self):
        from repro.api.executor import ExecutionReport, SUB_SHARD_MIN_SPECS

        session = Session()
        assert session.split_threshold() == SHARD_SPLIT_THRESHOLD
        session.last_execution = ExecutionReport(
            cache_misses=4, shard_times_s=[4.0, 4.0]
        )
        assert session.split_threshold() == SUB_SHARD_MIN_SPECS
        # A warm run that evaluated nothing carries no cost signal.
        session.last_execution = ExecutionReport(cache_misses=0, shard_times_s=[])
        assert session.split_threshold() == SHARD_SPLIT_THRESHOLD

    def test_report_records_split_threshold(self, specs):
        session = Session()
        result = session.run_sweep(specs, swept=["voxel_size"])
        assert (
            result.meta["execution"]["split_threshold"] == SHARD_SPLIT_THRESHOLD
        )
        assert session.last_execution.per_spec_seconds is not None

    def test_sweep_after_expensive_run_uses_adapted_threshold(self, specs):
        from repro.api.executor import ExecutionReport, SUB_SHARD_MIN_SPECS

        session = Session()
        session.last_execution = ExecutionReport(
            cache_misses=2, shard_times_s=[3.0, 3.0]
        )
        result = session.run_sweep(specs, swept=["voxel_size"])
        assert (
            result.meta["execution"]["split_threshold"] == SUB_SHARD_MIN_SPECS
        )
