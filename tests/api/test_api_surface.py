"""The public surface of ``repro.api`` matches its ``__all__`` exactly."""

import inspect

import repro.api as api


def _importable_names():
    """Non-underscore attributes of the package that are not submodules."""
    return {
        name
        for name in dir(api)
        if not name.startswith("_") and not inspect.ismodule(getattr(api, name))
    }


def test_all_entries_resolve():
    for name in api.__all__:
        assert hasattr(api, name), f"__all__ names missing attribute {name!r}"


def test_surface_matches_all():
    # Everything importable from the package top level is deliberate: the
    # __all__ list IS the public API, with no stray re-exports (internals
    # like worker_session / atomic_write_json stay on their own modules).
    assert _importable_names() == set(api.__all__)


def test_all_is_sorted_and_unique():
    assert sorted(api.__all__) == list(api.__all__)
    assert len(set(api.__all__)) == len(api.__all__)


def test_internals_stay_importable_from_their_modules():
    from repro.api.pool import worker_session
    from repro.api.store import atomic_write_json

    assert callable(worker_session)
    assert callable(atomic_write_json)


def test_new_types_exported():
    assert api.RenderOptions is not None
    assert api.TrajectorySpec is not None
