"""Seeded property tests for spec canonicalization and serialization.

Randomized (but deterministic — one fixed seed, so failures reproduce)
specs drawn from the full valid space check the invariants the result
store depends on:

* the store hash ignores override-dict key order;
* a spec that restates a default explicitly (scene-default voxel size,
  default tile size, variant-default unit counts, int vs float spelling)
  hashes identically to the spec that omits it;
* ``to_dict`` / ``from_dict`` / ``to_json`` / ``from_json`` round trip
  losslessly — including the store hash.
"""

import random

import pytest

from repro.api import ExperimentSpec, spec_key
from repro.api.spec import ACCELERATOR_ARCHS, ARCH_MODELS, COMPRESSION_MODES
from repro.arch.accelerator import AcceleratorConfig
from repro.scenes.registry import SCENE_REGISTRY

#: One seed, many cases: deterministic across runs and platforms.
SEED = 20250730
NUM_CASES = 60

#: Config overrides the generator may draw (value pools are all valid).
CONFIG_POOL = {
    "voxel_size": (0.2, 0.4, 1.0, 2.0, 3.0),
    "tile_size": (8, 16, 32),
    "ray_stride": (2, 4),
    "sh_degree": (1, 2, 3),
    "blend_kernel": ("reference", "vectorized"),
    "max_voxels_per_ray": (256, 512),
    "frame_cache_size": (4, 8),
}

#: Arch options the generator may draw (accelerator archs only).
ARCH_POOL = {
    "num_vsu": (1, 2),
    "num_hfu": (2, 4),
    "cfus_per_hfu": (1, 2, 4),
    "ffus_per_hfu": (1, 2),
    "num_sort_units": (1, 2),
    "num_render_units": (32, 64),
}


def random_spec(rng: random.Random) -> ExperimentSpec:
    """One uniformly random valid spec."""
    from repro.variants.base import list_algorithms

    arch = rng.choice(ARCH_MODELS)
    config = {
        key: rng.choice(values)
        for key, values in CONFIG_POOL.items()
        if rng.random() < 0.4
    }
    arch_options = (
        {
            key: rng.choice(values)
            for key, values in ARCH_POOL.items()
            if rng.random() < 0.4
        }
        if arch in ACCELERATOR_ARCHS
        else {}
    )
    return ExperimentSpec(
        scene=rng.choice(sorted(SCENE_REGISTRY)),
        algorithm=rng.choice(list_algorithms()),
        compression=rng.choice(COMPRESSION_MODES),
        arch=arch,
        config=config,
        arch_options=arch_options,
        resolution_scale=rng.choice((0.25, 0.5, 1.0)),
        tag=rng.choice(("", "a", "sweep: point")),
    )


@pytest.fixture(scope="module")
def cases():
    rng = random.Random(SEED)
    return [random_spec(rng) for _ in range(NUM_CASES)]


class TestHashInvariants:
    def test_key_ignores_override_dict_order(self, cases):
        rng = random.Random(SEED + 1)
        for spec in cases:
            config = list(spec.config_overrides.items())
            arch_options = list(spec.arch_overrides.items())
            rng.shuffle(config)
            rng.shuffle(arch_options)
            shuffled = ExperimentSpec(
                scene=spec.scene,
                algorithm=spec.algorithm,
                compression=spec.compression,
                arch=spec.arch,
                config=dict(config),
                arch_options=dict(arch_options),
                resolution_scale=spec.resolution_scale,
                tag=spec.tag,
            )
            assert spec_key(shuffled) == spec_key(spec)

    def test_key_ignores_overrides_that_restate_defaults(self, cases):
        for spec in cases:
            resolved = spec.streaming_config()
            config = dict(spec.config_overrides)
            # Restate the resolved voxel size (the scene/compression default
            # when not overridden) and one untouched field's default.
            config.setdefault("voxel_size", resolved.voxel_size)
            config.setdefault("tile_size", resolved.tile_size)
            explicit = spec.with_options(config=config)
            assert explicit.streaming_config() == resolved
            assert spec_key(explicit) == spec_key(spec)

    def test_key_ignores_variant_default_arch_options(self, cases):
        for spec in cases:
            if spec.arch not in ACCELERATOR_ARCHS:
                continue
            defaults = AcceleratorConfig.variant(spec.arch)
            arch_options = dict(spec.arch_overrides)
            arch_options.setdefault("num_sort_units", defaults.num_sort_units)
            explicit = spec.with_options(arch_options=arch_options)
            assert spec_key(explicit) == spec_key(spec)

    def test_key_ignores_int_float_spelling(self, cases):
        for spec in cases:
            config = {
                key: float(value) if isinstance(value, (int, float)) else value
                for key, value in spec.config_overrides.items()
            }
            respelled = spec.with_options(config=config)
            assert spec_key(respelled) == spec_key(spec)

    def test_key_distinguishes_real_changes(self, cases):
        keys = {spec_key(spec) for spec in cases}
        for spec in cases:
            changed = spec.with_options(
                resolution_scale=spec.resolution_scale * 0.5
            )
            assert spec_key(changed) not in keys or spec_key(changed) != spec_key(
                spec
            )
            assert spec_key(spec.with_options(tag=spec.tag + "!")) != spec_key(spec)


class TestRoundTrip:
    def test_dict_round_trip(self, cases):
        for spec in cases:
            restored = ExperimentSpec.from_dict(spec.to_dict())
            assert restored == spec
            assert spec_key(restored) == spec_key(spec)

    def test_json_round_trip(self, cases):
        for spec in cases:
            restored = ExperimentSpec.from_json(spec.to_json())
            assert restored == spec
            assert restored.to_json() == spec.to_json()

    def test_canonical_dict_is_stable_under_round_trip(self, cases):
        for spec in cases:
            restored = ExperimentSpec.from_json(spec.to_json())
            assert restored.canonical_dict() == spec.canonical_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown spec field"):
            ExperimentSpec.from_dict({"scene": "lego", "voxel": 1.0})
