"""Shared fixtures for the test suite.

The fixtures build *small* models and cameras (tens to hundreds of
Gaussians, tiny images) so the whole suite runs in seconds; the full-size
procedural scenes are exercised by the benchmark harness instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gaussians.camera import Camera
from repro.gaussians.model import GaussianModel
from repro.gaussians.sh import rgb_to_sh_dc


def make_model(
    num_gaussians: int = 200,
    extent: float = 4.0,
    scale: float = 0.08,
    seed: int = 0,
    opacity: float = 0.8,
) -> GaussianModel:
    """A random but reproducible Gaussian cloud centred at the origin."""
    rng = np.random.default_rng(seed)
    positions = rng.uniform(-extent / 2, extent / 2, size=(num_gaussians, 3))
    scales = rng.lognormal(np.log(scale), 0.3, size=(num_gaussians, 3))
    rotations = rng.normal(size=(num_gaussians, 4))
    opacities = np.clip(rng.normal(opacity, 0.1, size=num_gaussians), 0.05, 0.99)
    colors = rng.uniform(0.1, 0.9, size=(num_gaussians, 3))
    sh_rest = rng.normal(0.0, 0.02, size=(num_gaussians, 15, 3))
    return GaussianModel(
        positions=positions,
        scales=scales,
        rotations=rotations,
        opacities=opacities,
        sh_dc=rgb_to_sh_dc(colors),
        sh_rest=sh_rest,
    )


def make_camera(width: int = 64, height: int = 48, distance: float = 6.0) -> Camera:
    """A camera looking at the origin from +x."""
    return Camera.from_lookat(
        eye=(distance, 0.5, 1.0),
        target=(0.0, 0.0, 0.0),
        width=width,
        height=height,
        fov_deg=60.0,
    )


@pytest.fixture
def small_model() -> GaussianModel:
    return make_model(num_gaussians=200, seed=1)


@pytest.fixture
def tiny_model() -> GaussianModel:
    return make_model(num_gaussians=40, seed=2)


@pytest.fixture
def camera() -> Camera:
    return make_camera()


@pytest.fixture
def tiny_camera() -> Camera:
    return make_camera(width=32, height=32)


@pytest.fixture(scope="session", autouse=True)
def shm_leak_audit():
    """Fail the run if the suite leaks shared-memory segments.

    Snapshot ``/dev/shm`` before any test runs, close the process-default
    session at teardown (its registry legitimately holds segments while
    tests share it), then require that every repro-created segment visible
    at the end already existed at the start — segments left behind by
    *other* processes (a crashed earlier run, a concurrently running
    daemon) must not fail this suite, but segments this run created and
    lost must.
    """
    from repro.api.shm import leaked_segments

    before = set(leaked_segments())
    yield
    import repro.api.session as session_module

    default = session_module._DEFAULT_SESSION
    if default is not None:
        default.close()
        session_module._DEFAULT_SESSION = None
    leaked = sorted(set(leaked_segments()) - before)
    assert not leaked, (
        f"test run leaked {len(leaked)} shared-memory segment(s): {leaked}; "
        "some registry was not closed (Session.close/ShmRegistry.close)"
    )
