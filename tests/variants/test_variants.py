"""Tests for the Mini-Splatting and LightGaussian re-implementations."""

import numpy as np
import pytest

from repro.gaussians.metrics import psnr
from repro.gaussians.rasterizer import TileRasterizer
from repro.variants.base import BaseAlgorithm, gaussian_importance, get_algorithm, list_algorithms
from repro.variants.light_gaussian import LightGaussian
from repro.variants.mini_splatting import MiniSplatting
from tests.conftest import make_camera, make_model


def test_registry_contains_all_algorithms():
    names = list_algorithms()
    assert {"3dgs", "mini_splatting", "light_gaussian"} <= set(names)


def test_get_algorithm_unknown():
    with pytest.raises(KeyError):
        get_algorithm("does_not_exist")


def test_identity_algorithm_is_copy(small_model):
    out = get_algorithm("3dgs").transform(small_model)
    assert out is not small_model
    np.testing.assert_array_equal(out.positions, small_model.positions)


def test_importance_requires_cameras(small_model):
    with pytest.raises(ValueError):
        gaussian_importance(small_model, [])


def test_importance_favours_big_opaque_gaussians(small_model):
    camera = make_camera()
    boosted = small_model.copy()
    boosted.scales[:10] = boosted.scales[:10] * 5
    boosted.opacities[:10] = 0.99
    scores = gaussian_importance(boosted, [camera])
    assert scores[:10].mean() > scores[10:].mean()


def test_mini_splatting_keeps_requested_fraction(small_model):
    camera = make_camera()
    algo = MiniSplatting(keep_fraction=0.4, seed=3)
    out = algo.transform(small_model, cameras=[camera])
    assert len(out) == int(round(0.4 * len(small_model)))


def test_mini_splatting_keep_all_is_copy(small_model):
    out = MiniSplatting(keep_fraction=1.0).transform(small_model)
    assert len(out) == len(small_model)


def test_mini_splatting_validation():
    with pytest.raises(ValueError):
        MiniSplatting(keep_fraction=0.0)
    with pytest.raises(ValueError):
        MiniSplatting(deterministic_fraction=2.0)


def test_mini_splatting_without_cameras(small_model):
    out = MiniSplatting(keep_fraction=0.3).transform(small_model)
    assert len(out) == int(round(0.3 * len(small_model)))


def test_light_gaussian_prunes_and_distills(small_model):
    algo = LightGaussian(prune_fraction=0.5, distill_sh_degree=1)
    out = algo.transform(small_model, cameras=[make_camera()])
    assert len(out) == int(round(0.5 * len(small_model)))
    # Degree 1 keeps the first 3 rest coefficients; the rest must be zero.
    assert np.all(out.sh_rest[:, 3:, :] == 0.0)
    assert np.any(out.sh_rest[:, :3, :] != 0.0)


def test_light_gaussian_validation():
    with pytest.raises(ValueError):
        LightGaussian(prune_fraction=1.0)
    with pytest.raises(ValueError):
        LightGaussian(distill_sh_degree=5)


def test_compacted_models_still_render_similar_images():
    """Pruned models must stay visually close to the original render."""
    model = make_model(600, scale=0.12, opacity=0.85, seed=21)
    camera = make_camera(width=48, height=48)
    rasterizer = TileRasterizer()
    reference = rasterizer.render(model, camera).image
    for algorithm in (MiniSplatting(keep_fraction=0.5), LightGaussian(prune_fraction=0.4)):
        compact = algorithm.transform(model, cameras=[camera])
        image = rasterizer.render(compact, camera).image
        assert psnr(reference, image) > 18.0


def test_base_algorithm_repr():
    assert "BaseAlgorithm" in repr(BaseAlgorithm())
