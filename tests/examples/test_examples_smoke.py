"""Smoke test: the quickstart example runs end to end on a small scene.

Mirrors the CI examples job; the other three examples share the same API
surface and are exercised (more cheaply) through the ``tests/api`` suite.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_quickstart_runs_on_small_scene():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "quickstart.py"),
            "--scene",
            "lego",
            "--resolution-scale",
            "0.5",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "PSNR vs ground truth" in completed.stdout
    assert "experiment point — lego/3dgs/streaminggs" in completed.stdout


def test_service_client_example_runs_embedded_daemon():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    completed = subprocess.run(
        [
            sys.executable,
            str(REPO_ROOT / "examples" / "service_client.py"),
            "--scene",
            "lego",
            "--resolution-scale",
            "0.25",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    assert "render (warm): lego" in completed.stdout
    assert "rejected=0" in completed.stdout
    assert "daemon drained and stopped" in completed.stdout
