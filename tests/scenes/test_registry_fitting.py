"""Tests for the scene registry and the trained-model calibration."""

import numpy as np
import pytest

from repro.gaussians.metrics import psnr
from repro.gaussians.rasterizer import TileRasterizer
from repro.scenes.fitting import fit_trained_model, perturb_model
from repro.scenes.registry import (
    BASE_ALGORITHMS,
    SCENE_REGISTRY,
    build_scene,
    default_eval_camera,
    eval_cameras,
    scene_names,
)
from tests.conftest import make_camera, make_model


def test_registry_contains_paper_scenes():
    assert set(SCENE_REGISTRY) == {
        "lego",
        "palace",
        "train",
        "truck",
        "playroom",
        "drjohnson",
    }


def test_registry_categories_and_voxel_defaults():
    for descriptor in SCENE_REGISTRY.values():
        if descriptor.category == "real":
            assert descriptor.default_voxel_size == 2.0
        else:
            assert descriptor.default_voxel_size == 0.4


def test_registry_target_psnrs_cover_all_algorithms():
    for descriptor in SCENE_REGISTRY.values():
        for algorithm in BASE_ALGORITHMS:
            assert algorithm in descriptor.target_psnr


def test_scene_names_filtering():
    assert set(scene_names()) == set(SCENE_REGISTRY)
    assert set(scene_names("synthetic")) == {"lego", "palace"}
    assert set(scene_names("real")) == {"train", "truck", "playroom", "drjohnson"}


def test_scale_factor_positive():
    for descriptor in SCENE_REGISTRY.values():
        assert descriptor.scale_factor > 1.0
        assert descriptor.full_num_pixels > 0


def test_build_scene_respects_override():
    model = build_scene("lego", num_gaussians=321)
    assert len(model) == 321


def test_build_scene_unknown():
    with pytest.raises(KeyError):
        build_scene("nonexistent")


def test_default_eval_camera_resolution():
    camera = default_eval_camera("lego")
    assert (camera.width, camera.height) == SCENE_REGISTRY["lego"].sim_resolution
    half = default_eval_camera("lego", resolution_scale=0.5)
    assert half.width == camera.width // 2


def test_eval_cameras_are_distinct():
    cameras = eval_cameras("train", num_views=3)
    assert len(cameras) == 3
    assert not np.allclose(cameras[0].position, cameras[1].position)


def test_perturb_model_zero_noise_is_copy():
    model = make_model(100)
    same = perturb_model(model, 0.0)
    np.testing.assert_array_equal(same.positions, model.positions)
    np.testing.assert_array_equal(same.sh_dc, model.sh_dc)


def test_perturb_model_rejects_negative_noise():
    with pytest.raises(ValueError):
        perturb_model(make_model(10), -0.1)


def test_perturbation_reduces_psnr_monotonically():
    model = make_model(300, scale=0.15, seed=9)
    camera = make_camera(width=48, height=48)
    rasterizer = TileRasterizer()
    reference = rasterizer.render(model, camera).image
    small = psnr(reference, rasterizer.render(perturb_model(model, 0.02, seed=1), camera).image)
    large = psnr(reference, rasterizer.render(perturb_model(model, 0.3, seed=1), camera).image)
    assert small > large


def test_fit_trained_model_reaches_target():
    model = make_model(300, scale=0.15, seed=11)
    camera = make_camera(width=48, height=48)
    fitted = fit_trained_model(model, camera, target_psnr=30.0, max_iterations=6)
    assert abs(fitted.achieved_psnr - 30.0) < 1.5
    assert fitted.ground_truth.shape == (camera.height, camera.width, 3)
    assert len(fitted.trained) == len(model)
