"""Tests for the procedural scene generators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scenes.synthetic import (
    SceneSpec,
    generate_object_scene,
    generate_room_scene,
    generate_scene,
)


def test_spec_validation():
    with pytest.raises(ValueError):
        SceneSpec(num_gaussians=0, extent=1.0, layout="object")
    with pytest.raises(ValueError):
        SceneSpec(num_gaussians=10, extent=-1.0, layout="object")
    with pytest.raises(ValueError):
        SceneSpec(num_gaussians=10, extent=1.0, layout="weird")


@pytest.mark.parametrize("layout", ["object", "room"])
def test_generate_scene_size_and_bounds(layout):
    spec = SceneSpec(num_gaussians=500, extent=8.0, layout=layout, seed=5)
    model = generate_scene(spec)
    assert len(model) == 500
    assert np.all(np.abs(model.positions) <= 4.0 + 1e-5)
    assert np.all(model.scales > 0)
    assert np.all((model.opacities > 0) & (model.opacities < 1))


def test_generation_is_deterministic():
    spec = SceneSpec(num_gaussians=300, extent=4.0, layout="object", seed=42)
    a = generate_scene(spec)
    b = generate_scene(spec)
    np.testing.assert_array_equal(a.positions, b.positions)
    np.testing.assert_array_equal(a.sh_dc, b.sh_dc)


def test_different_seeds_give_different_scenes():
    base = SceneSpec(num_gaussians=300, extent=4.0, layout="object", seed=1)
    other = SceneSpec(num_gaussians=300, extent=4.0, layout="object", seed=2)
    a = generate_scene(base)
    b = generate_scene(other)
    assert not np.allclose(a.positions, b.positions)


def test_object_scene_is_clustered():
    """Object scenes are denser near the cluster centres than uniformly random."""
    spec = SceneSpec(num_gaussians=2000, extent=4.0, layout="object", seed=3)
    model = generate_object_scene(spec)
    # Clustered point sets have a much smaller mean nearest-neighbour
    # distance than a uniform distribution over the same volume.
    sample = model.positions[:400]
    d = np.linalg.norm(sample[:, None, :] - sample[None, :, :], axis=2)
    np.fill_diagonal(d, np.inf)
    mean_nn = d.min(axis=1).mean()
    uniform_nn = 0.55 * (4.0 ** 3 / 400) ** (1 / 3)
    assert mean_nn < uniform_nn


def test_room_scene_has_ground_plane():
    spec = SceneSpec(num_gaussians=2000, extent=20.0, layout="room", seed=7)
    model = generate_room_scene(spec)
    near_ground = np.abs(model.positions[:, 2]) < 0.5
    assert near_ground.mean() > 0.15


@settings(max_examples=10, deadline=None)
@given(n=st.integers(min_value=16, max_value=500), seed=st.integers(0, 100))
def test_scene_sizes_respected(n, seed):
    spec = SceneSpec(num_gaussians=n, extent=5.0, layout="room", seed=seed)
    assert len(generate_scene(spec)) == n
