"""Golden-equivalence tests: the vectorized kernel must match the reference.

The acceptance bar of the engine refactor: images, alpha maps, fragment
counts and violation statistics of the vectorized broadcast kernel agree
with the per-Gaussian reference loop on seeded scenes, for both the
tile-centric rasterizer and the memory-centric streaming renderer.
"""

import numpy as np
import pytest

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine.kernels import available_kernels, get_kernel
from repro.engine.state import BlendState
from repro.gaussians.projection import project_gaussians
from repro.gaussians.rasterizer import TileRasterizer, blend_tile
from tests.conftest import make_camera, make_model

GOLDEN_ATOL = 1e-9


def test_kernel_registry():
    assert set(available_kernels()) == {"reference", "vectorized"}
    assert get_kernel() is get_kernel("vectorized")
    with pytest.raises(KeyError):
        get_kernel("nope")


@pytest.mark.parametrize("seed", [1, 5, 9])
def test_tile_render_golden_equivalence(seed):
    model = make_model(num_gaussians=300, seed=seed)
    camera = make_camera(width=80, height=64)
    reference = TileRasterizer(kernel="reference").render(model, camera)
    vectorized = TileRasterizer(kernel="vectorized").render(model, camera)
    np.testing.assert_allclose(vectorized.image, reference.image, atol=GOLDEN_ATOL)
    np.testing.assert_allclose(vectorized.alpha, reference.alpha, atol=GOLDEN_ATOL)
    assert (
        vectorized.stats.num_blended_fragments
        == reference.stats.num_blended_fragments
    )
    assert vectorized.stats.num_tile_pairs == reference.stats.num_tile_pairs


@pytest.mark.parametrize("seed", [2, 7])
def test_streaming_render_golden_equivalence(seed):
    model = make_model(num_gaussians=250, extent=5.0, scale=0.1, seed=seed)
    camera = make_camera(width=48, height=32, distance=6.0)
    config = StreamingConfig(voxel_size=1.5, use_vq=False)
    reference = StreamingRenderer(
        model, config.with_options(blend_kernel="reference")
    ).render(camera)
    vectorized = StreamingRenderer(
        model, config.with_options(blend_kernel="vectorized")
    ).render(camera)
    np.testing.assert_allclose(vectorized.image, reference.image, atol=GOLDEN_ATOL)
    np.testing.assert_allclose(vectorized.alpha, reference.alpha, atol=GOLDEN_ATOL)
    assert vectorized.stats.blended_fragments == reference.stats.blended_fragments
    assert vectorized.stats.depth_order_errors == reference.stats.depth_order_errors
    np.testing.assert_allclose(
        vectorized.stats.gaussian_blend_weight,
        reference.stats.gaussian_blend_weight,
        atol=GOLDEN_ATOL,
    )
    np.testing.assert_allclose(
        vectorized.stats.gaussian_violation_weight,
        reference.stats.gaussian_violation_weight,
        atol=GOLDEN_ATOL,
    )
    np.testing.assert_array_equal(
        vectorized.stats.error_gaussian_indices(),
        reference.stats.error_gaussian_indices(),
    )


def test_kernels_agree_on_resumed_state():
    """Voxel-style resumed blending agrees across kernels."""
    model = make_model(num_gaussians=150, seed=4)
    camera = make_camera(width=48, height=48)
    projected = project_gaussians(model, camera)
    order = np.argsort(projected.depths)
    xs, ys = np.meshgrid(np.arange(16, 32), np.arange(16, 32))
    xs, ys = xs.reshape(-1), ys.reshape(-1)
    half = len(order) // 2

    states = {}
    for kernel in available_kernels():
        state = blend_tile(
            xs, ys, projected, order[:half], kernel=kernel, track_depth_order=True
        )
        state = blend_tile(
            xs,
            ys,
            projected,
            order[half:],
            state=state,
            kernel=kernel,
            track_depth_order=True,
        )
        states[kernel] = state

    reference, vectorized = states["reference"], states["vectorized"]
    np.testing.assert_allclose(vectorized.color, reference.color, atol=GOLDEN_ATOL)
    np.testing.assert_allclose(
        vectorized.transmittance, reference.transmittance, atol=GOLDEN_ATOL
    )
    np.testing.assert_allclose(
        vectorized.max_depth, reference.max_depth, atol=GOLDEN_ATOL
    )
    assert vectorized.blended_fragments == reference.blended_fragments
    assert vectorized.depth_violations == reference.depth_violations
    np.testing.assert_allclose(
        vectorized.gaussian_weights, reference.gaussian_weights, atol=GOLDEN_ATOL
    )
    np.testing.assert_allclose(
        vectorized.gaussian_violation_weights,
        reference.gaussian_violation_weights,
        atol=GOLDEN_ATOL,
    )


def test_vectorized_out_of_order_violations_match():
    """Back-to-front blending registers identical violations in both kernels."""
    model = make_model(num_gaussians=80, seed=6)
    camera = make_camera(width=32, height=32)
    projected = project_gaussians(model, camera)
    wrong_order = np.argsort(-projected.depths)
    xs, ys = np.meshgrid(np.arange(32), np.arange(32))
    xs, ys = xs.reshape(-1), ys.reshape(-1)
    reference = blend_tile(
        xs, ys, projected, wrong_order, kernel="reference", track_depth_order=True
    )
    vectorized = blend_tile(
        xs, ys, projected, wrong_order, kernel="vectorized", track_depth_order=True
    )
    assert reference.depth_violations > 0
    assert vectorized.depth_violations == reference.depth_violations
    np.testing.assert_allclose(
        vectorized.gaussian_violation_weights,
        reference.gaussian_violation_weights,
        atol=GOLDEN_ATOL,
    )


def test_blend_state_weight_array_binding():
    """Bound external arrays receive attribution in place."""
    model = make_model(num_gaussians=60, seed=8)
    camera = make_camera(width=32, height=32)
    projected = project_gaussians(model, camera)
    order = np.argsort(projected.depths)
    xs, ys = np.meshgrid(np.arange(16), np.arange(16))
    xs, ys = xs.reshape(-1), ys.reshape(-1)

    external_w = np.zeros(len(model))
    external_v = np.zeros(len(model))
    state = BlendState.fresh(len(xs))
    state.bind_weight_arrays(external_w, external_v)
    state = blend_tile(
        xs, ys, projected, order, state=state, track_depth_order=True
    )
    assert state.gaussian_weights is external_w
    assert external_w.sum() > 0.0
