"""RenderService: batched requests, renderer sharing, equivalence."""

import numpy as np
import pytest

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine.service import (
    RenderOptions,
    RenderRequest,
    RenderService,
    get_default_service,
)
from repro.gaussians.rasterizer import TileRasterizer
from tests.conftest import make_camera, make_model


@pytest.fixture(scope="module")
def scene():
    model = make_model(num_gaussians=180, extent=5.0, scale=0.1, seed=20)
    camera = make_camera(width=48, height=32, distance=6.0)
    config = StreamingConfig(voxel_size=1.5, use_vq=False)
    return model, camera, config


def test_request_validates_mode(scene):
    model, camera, config = scene
    with pytest.raises(ValueError):
        RenderRequest(model=model, camera=camera, config=config, mode="raytrace")


def test_service_matches_direct_renders(scene):
    model, camera, config = scene
    service = RenderService()
    tile_out, streaming_out = service.render_pair(model, camera, config)
    direct_tile = TileRasterizer(
        tile_size=config.tile_size,
        background=config.background,
        sh_degree=config.sh_degree,
        kernel=config.blend_kernel,
    ).render(model, camera)
    direct_streaming = StreamingRenderer(model, config).render(camera)
    np.testing.assert_array_equal(tile_out.image, direct_tile.image)
    np.testing.assert_array_equal(streaming_out.image, direct_streaming.image)
    assert streaming_out.stats.blended_fragments == direct_streaming.stats.blended_fragments


def test_batch_shares_streaming_renderer(scene):
    model, camera, config = scene
    other_camera = make_camera(width=48, height=32, distance=7.0)
    service = RenderService()
    responses = service.render_batch(
        [
            RenderRequest(model=model, camera=camera, config=config, tag="a"),
            RenderRequest(model=model, camera=other_camera, config=config, tag="b"),
            RenderRequest(model=model, camera=camera, config=config, tag="c"),
        ]
    )
    assert [r.tag for r in responses] == ["a", "b", "c"]
    # One renderer built, reused for the remaining requests of the group.
    assert service.renderer_misses == 1
    assert service.renderer_hits == 2
    # Identical poses share the prepared frame.
    renderer = service.streaming_renderer(model, config)
    assert renderer.frame_cache.hits >= 1
    np.testing.assert_array_equal(responses[0].image, responses[2].image)


def test_batch_mixes_modes(scene):
    model, camera, config = scene
    service = RenderService()
    responses = service.render_batch(
        [
            RenderRequest(model=model, camera=camera, config=config, mode="tile"),
            RenderRequest(model=model, camera=camera, config=config, mode="streaming"),
        ]
    )
    assert responses[0].output.__class__.__name__ == "RenderOutput"
    assert responses[1].output.__class__.__name__ == "StreamingRenderOutput"
    assert service.requests_served == 2


def test_renderer_cache_eviction(scene):
    _, camera, config = scene
    service = RenderService(max_renderers=1)
    model_a = make_model(num_gaussians=80, extent=5.0, scale=0.1, seed=21)
    model_b = make_model(num_gaussians=80, extent=5.0, scale=0.1, seed=22)
    service.render(RenderRequest(model=model_a, camera=camera, config=config))
    service.render(RenderRequest(model=model_b, camera=camera, config=config))
    service.render(RenderRequest(model=model_a, camera=camera, config=config))
    # model_a's renderer was evicted by model_b's, so it was rebuilt.
    assert service.renderer_misses == 3


def test_default_service_is_shared():
    assert get_default_service() is get_default_service()


def test_parallel_tile_rendering_through_service(scene):
    model, camera, config = scene
    service = RenderService()
    request = RenderRequest(model=model, camera=camera, config=config)
    serial = service.render(request)
    parallel = service.render(request, options=RenderOptions(tile_workers=3))
    np.testing.assert_array_equal(parallel.image, serial.image)
    np.testing.assert_array_equal(parallel.alpha, serial.alpha)
    assert parallel.stats.blended_fragments == serial.stats.blended_fragments
    stats = service.stats()
    assert stats["parallel_tile_frames"] == 1
    assert stats["last_frame"]["tile_workers"] == 3
    assert stats["last_frame"]["streaming_kernel"] == config.streaming_kernel
    assert stats["last_frame"]["seconds"] > 0.0


def test_frame_telemetry_recorded_per_streaming_render(scene):
    model, camera, config = scene
    service = RenderService()
    assert service.stats()["last_frame"] is None
    service.render(RenderRequest(model=model, camera=camera, config=config))
    telemetry = service.stats()["last_frame"]
    assert telemetry["tile_workers"] == 1
    assert telemetry["tiles"] > 0
    assert service.stats()["parallel_tile_frames"] == 0
    # Tile-mode renders leave the streaming telemetry untouched.
    service.render(
        RenderRequest(model=model, camera=camera, config=config, mode="tile")
    )
    assert service.stats()["last_frame"] == telemetry


# ----------------------------------------------------------------------
# RenderOptions and the deprecated-keyword shim.
# ----------------------------------------------------------------------
def test_render_options_validation():
    with pytest.raises(ValueError, match="tile_workers"):
        RenderOptions(tile_workers=0)
    with pytest.raises(ValueError, match="tile_mode"):
        RenderOptions(tile_mode="bogus")
    with pytest.raises(ValueError, match="streaming_kernel"):
        RenderOptions(streaming_kernel="bogus")
    with pytest.raises(ValueError, match="temporal_mode"):
        RenderOptions(temporal_mode="bogus")
    with pytest.raises(ValueError, match="resolution_scale"):
        RenderOptions(resolution_scale=0.0)


def test_render_options_dict_roundtrip():
    options = RenderOptions(tile_workers=2, temporal_mode="carry", resolution_scale=0.5)
    assert RenderOptions.from_dict(options.to_dict()) == options
    with pytest.raises(ValueError, match="unknown RenderOptions fields"):
        RenderOptions.from_dict({"tile_worker": 2})


def test_render_options_overrides(scene):
    model, camera, config = scene
    service = RenderService()
    request = RenderRequest(model=model, camera=camera, config=config)
    plain = service.render(request)
    scaled = service.render(request, options=RenderOptions(resolution_scale=0.5))
    assert scaled.image.shape == (camera.height // 2, camera.width // 2, 3)
    assert plain.image.shape == (camera.height, camera.width, 3)
    # A per-call temporal override renders through a carry-mode config
    # without touching the request's own config object.
    carried = service.render(request, options=RenderOptions(temporal_mode="carry"))
    assert service.last_frame["temporal_mode"] == "carry"
    np.testing.assert_allclose(carried.image, plain.image, atol=1e-9)
    assert request.config.temporal_mode == "off"


def test_deprecated_kwargs_warn_exactly_once(scene, monkeypatch):
    from repro.engine import service as service_module

    monkeypatch.setattr(service_module, "_DEPRECATED_KWARGS_WARNED", False)
    model, camera, config = scene
    service = RenderService()
    request = RenderRequest(model=model, camera=camera, config=config)
    with pytest.warns(DeprecationWarning, match="tile_workers"):
        first = service.render(request, tile_workers=2)
    # The shim warns once per process; later loose-keyword calls are quiet.
    import warnings as warnings_module

    with warnings_module.catch_warnings():
        warnings_module.simplefilter("error")
        second = service.render(request, tile_workers=2, tile_mode="thread")
    np.testing.assert_array_equal(first.image, second.image)
    with pytest.raises(TypeError, match="not both"):
        service.render(request, options=RenderOptions(), tile_workers=2)


def test_trajectory_telemetry_and_temporal_stats(scene):
    model, camera, config = scene
    service = RenderService()
    cameras = [camera, camera, camera]
    responses = service.render_trajectory(
        model, cameras, config=config, options=RenderOptions(temporal_mode="carry")
    )
    assert len(responses) == 3
    summary = service.last_trajectory
    assert summary["frames"] == 3
    # Identical poses after the cold first frame carry everything: the
    # warm frames hit 100%, the overall rate dilutes only by the cold
    # frame's revalidations.
    assert summary["warm_frames"] == 2
    warm = [f for f in summary["per_frame"] if not f.get("cold_frame")]
    assert all(f["coherence_hit_rate"] == 1.0 for f in warm)
    assert summary["coherence_hit_rate"] == pytest.approx(2.0 / 3.0)
    temporal = service.stats()["temporal"]
    assert temporal["frames"] == 3
    assert temporal["cold_frames"] == 1
    assert temporal["carried_voxels"] == summary["carried_voxels"] > 0
