"""Frame-preparation cache: hits, invalidation, and render equivalence."""

import numpy as np
import pytest

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine.cache import FrameCache, frame_key
from tests.conftest import make_camera, make_model


@pytest.fixture(scope="module")
def renderer():
    model = make_model(num_gaussians=200, extent=5.0, scale=0.1, seed=12)
    config = StreamingConfig(voxel_size=1.5, use_vq=False)
    return StreamingRenderer(model, config)


def test_repeated_render_hits_cache(renderer):
    camera = make_camera(width=48, height=32, distance=6.0)
    first = renderer.render(camera)
    misses_after_first = renderer.frame_cache.misses
    hits_after_first = renderer.frame_cache.hits
    second = renderer.render(camera)
    assert renderer.frame_cache.misses == misses_after_first
    assert renderer.frame_cache.hits > hits_after_first
    # Cached preparation must not change the output or the accounting.
    np.testing.assert_array_equal(first.image, second.image)
    assert first.stats.rays_sampled == second.stats.rays_sampled
    assert first.stats.dag_edges == second.stats.dag_edges
    assert first.stats.ordering_table_entries == second.stats.ordering_table_entries
    assert first.stats.traffic.total_bytes == second.stats.traffic.total_bytes


def test_new_pose_misses_cache(renderer):
    camera_a = make_camera(width=48, height=32, distance=6.0)
    camera_b = make_camera(width=48, height=32, distance=7.5)
    renderer.render(camera_a)
    misses_before = renderer.frame_cache.misses
    renderer.render(camera_b)
    assert renderer.frame_cache.misses == misses_before + 1


def test_clear_invalidates(renderer):
    camera = make_camera(width=48, height=32, distance=6.0)
    renderer.render(camera)
    renderer.frame_cache.clear()
    misses_before = renderer.frame_cache.misses
    renderer.render(camera)
    assert renderer.frame_cache.misses == misses_before + 1


def test_invalidate_single_entry(renderer):
    camera = make_camera(width=48, height=32, distance=6.0)
    renderer.render(camera)
    key = frame_key(
        camera,
        tile_size=renderer.config.tile_size,
        ray_stride=renderer.config.ray_stride,
        max_voxels_per_ray=renderer.config.max_voxels_per_ray,
    )
    assert renderer.frame_cache.invalidate(key)
    assert not renderer.frame_cache.invalidate(key)


def test_cache_capacity_evicts_lru():
    cache = FrameCache(capacity=2)
    cache.put("a", "prep-a")
    cache.put("b", "prep-b")
    assert cache.get("a") == "prep-a"       # refresh a; b is now LRU
    cache.put("c", "prep-c")
    assert cache.get("b") is None
    assert cache.get("a") == "prep-a"
    assert cache.get("c") == "prep-c"
    assert len(cache) == 2


def test_cache_disabled_at_zero_capacity():
    model = make_model(num_gaussians=100, extent=5.0, scale=0.1, seed=13)
    config = StreamingConfig(voxel_size=1.5, use_vq=False, frame_cache_size=0)
    renderer = StreamingRenderer(model, config)
    camera = make_camera(width=32, height=32, distance=6.0)
    renderer.render(camera)
    renderer.render(camera)
    assert renderer.frame_cache.hits == 0
    assert len(renderer.frame_cache) == 0


def test_pose_key_distinguishes_intrinsics():
    camera_a = make_camera(width=48, height=32)
    camera_b = make_camera(width=64, height=32)
    assert camera_a.pose_key() != camera_b.pose_key()
    assert camera_a.pose_key() == make_camera(width=48, height=32).pose_key()
