"""Smoke test of the streaming render-path benchmark harness."""


def test_streaming_benchmark_smoke():
    """The streaming benchmark verifies equivalence on a reduced scene."""
    from repro.engine.bench import run_streaming_benchmark

    result = run_streaming_benchmark(
        num_gaussians=400, width=48, height=36, repeats=1, tile_workers=2
    )
    assert result.stats_equal, result.stats_detail
    assert result.max_image_delta <= 1e-9
    assert result.speedup > 0
    entry = result.as_dict()
    assert entry["seconds"]["vectorized"] > 0
    assert "vectorized_parallel" in entry["seconds"]
    assert "speedup" in result.format() or "speedup" in entry
