"""Integration tests of the service daemon.

Each test runs its own small daemon on a background thread.  Concurrency
inside one test is driven two ways: through real socket clients (protocol
coverage) and by scheduling ``handle_request`` coroutines straight onto
the daemon's loop (queue/fairness/supervision mechanics without socket
bookkeeping).  ``sleep`` requests keep the mechanics tests fast; render
and sweep requests cover the real execution paths once each.
"""

import asyncio
import threading
import time

import pytest

from repro.service.client import ServiceClient, scrape_http
from repro.service.daemon import ServiceConfig, ServiceDaemon
from repro.service.protocol import ServiceRequest


def start_daemon(**overrides):
    config = ServiceConfig(
        port=0,
        workers=overrides.pop("workers", 1),
        queue_limit=overrides.pop("queue_limit", 8),
        supervisor_interval_s=overrides.pop("supervisor_interval_s", 0.02),
        **overrides,
    )
    return ServiceDaemon(config).start_in_thread()


def submit_async(handle, kind, payload=None, client="anon"):
    """Schedule one request on the daemon loop; returns a waitable future."""
    request = ServiceRequest(kind=kind, payload=payload or {}, client=client)
    return asyncio.run_coroutine_threadsafe(
        handle.daemon.handle_request(request), handle.daemon._loop
    )


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestAdmissionControl:
    def test_overflow_rejected_with_retry_after(self):
        handle = start_daemon(workers=1, queue_limit=2)
        try:
            blocker = submit_async(handle, "sleep", {"seconds": 0.4})
            assert wait_until(lambda: handle.daemon._in_flight == 1)
            fillers = [
                submit_async(handle, "sleep", {"seconds": 0.0}) for _ in range(2)
            ]
            reject = submit_async(handle, "sleep", {"seconds": 0.0}).result(5)
            assert not reject.ok
            assert reject.code == "queue_full"
            assert reject.retry_after_s and reject.retry_after_s > 0
            # The reject is immediate and terminal for that request; the
            # admitted ones still complete.
            assert blocker.result(5).ok
            assert all(f.result(5).ok for f in fillers)
            metrics = handle.daemon.metrics_snapshot()
            assert metrics["requests"]["rejected"] == 1
            assert metrics["queue"]["rejected"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_client_retry_after_hint_succeeds(self):
        handle = start_daemon(workers=1, queue_limit=1)
        try:
            blocker = submit_async(handle, "sleep", {"seconds": 0.3})
            assert wait_until(lambda: handle.daemon._in_flight == 1)
            filler = submit_async(handle, "sleep", {"seconds": 0.0})
            with handle.client(client="patient") as client:
                response = client.submit(
                    "sleep", {"seconds": 0.0}, retries=20, raise_on_error=True
                )
                assert response.ok
                assert client.backoffs >= 1  # it slept through a reject
            assert blocker.result(5).ok and filler.result(5).ok
            assert handle.daemon.metrics["rejected"] >= 1  # it was refused first
        finally:
            handle.stop()
            handle.join()


class TestFairness:
    def test_hog_cannot_starve_light_client(self):
        handle = start_daemon(workers=1, queue_limit=16)
        try:
            blocker = submit_async(handle, "sleep", {"seconds": 0.3}, client="warm")
            assert wait_until(lambda: handle.daemon._in_flight == 1)
            hogs = [
                submit_async(handle, "sleep", {"seconds": 0.01}, client="hog")
                for _ in range(4)
            ]
            mice = [
                submit_async(handle, "sleep", {"seconds": 0.01}, client="mouse")
                for _ in range(2)
            ]
            assert blocker.result(5).ok
            hog_order = [f.result(5).meta["dispatch_index"] for f in hogs]
            mouse_order = [f.result(5).meta["dispatch_index"] for f in mice]
            # WFQ interleaving: blocker=0, then hog, mouse, hog, mouse,
            # hog, hog — the late-arriving light client overtakes the
            # hog's backlog instead of queueing behind all four.
            assert hog_order == [1, 3, 5, 6]
            assert mouse_order == [2, 4]
        finally:
            handle.stop()
            handle.join()


class TestSupervision:
    def test_crash_is_retried_exactly_once(self):
        handle = start_daemon(workers=1)
        try:
            response = submit_async(
                handle, "sleep", {"seconds": 0.0, "inject_crash_attempts": 1}
            ).result(10)
            assert response.ok
            assert response.meta["attempts"] == 2  # crashed once, retried once
            supervision = handle.daemon.supervisor.stats()
            assert supervision["restarts"] == 1
            assert supervision["retried"] == 1
            assert supervision["dropped"] == 0
            # The fleet healed: health is green again.
            assert wait_until(
                lambda: handle.daemon.healthz()["status"] == "healthy", timeout=5
            )
            events = [e["event"] for e in handle.daemon.events]
            assert "actor_restart" in events and "request_retried" in events
        finally:
            handle.stop()
            handle.join()

    def test_repeated_crash_fails_after_retry_budget(self):
        handle = start_daemon(workers=1)
        try:
            response = submit_async(
                handle, "sleep", {"seconds": 0.0, "inject_crash_attempts": 5}
            ).result(10)
            assert not response.ok
            assert response.code == "worker_crashed"
            supervision = handle.daemon.supervisor.stats()
            assert supervision["retried"] == 1  # exactly one retry, then fail
            assert supervision["dropped"] == 1
            # Later requests still work on the replacement actor.
            assert submit_async(handle, "sleep", {"seconds": 0.0}).result(5).ok
        finally:
            handle.stop()
            handle.join()

    def test_crash_mid_render_completes_with_correct_result(self):
        handle = start_daemon(workers=1)
        try:
            clean = submit_async(
                handle, "render", {"scene": "lego", "resolution_scale": 0.25}
            ).result(60)
            assert clean.ok
            crashed = submit_async(
                handle,
                "render",
                {
                    "scene": "lego",
                    "resolution_scale": 0.25,
                    "inject_crash_attempts": 1,
                },
            ).result(60)
            assert crashed.ok and crashed.meta["attempts"] == 2
            # The retried render is bit-identical to an undisturbed one.
            assert crashed.result["image_sha256"] == clean.result["image_sha256"]
            assert crashed.result["streaming_psnr"] == pytest.approx(
                clean.result["streaming_psnr"]
            )
        finally:
            handle.stop()
            handle.join()


class TestTimeouts:
    def test_slow_request_times_out_and_is_abandoned(self):
        handle = start_daemon(workers=1, request_timeout_s=0.15)
        try:
            response = submit_async(handle, "sleep", {"seconds": 0.6}).result(5)
            assert not response.ok
            assert response.code == "timeout"
            # The actor finishes the work later; the completion is counted
            # as abandoned, not delivered.
            assert wait_until(lambda: handle.daemon.metrics["abandoned"] == 1)
            assert handle.daemon.metrics["completed"] == 0
        finally:
            handle.stop()
            handle.join()


class TestShutdown:
    def test_graceful_shutdown_drains_queue(self):
        handle = start_daemon(workers=1, queue_limit=8)
        try:
            blocker = submit_async(handle, "sleep", {"seconds": 0.2})
            assert wait_until(lambda: handle.daemon._in_flight == 1)
            queued = [
                submit_async(handle, "sleep", {"seconds": 0.02}) for _ in range(3)
            ]
            assert wait_until(lambda: len(handle.daemon.queue) == 3)
            handle.stop(drain=True)
            # Every admitted request completes despite the stop.
            assert blocker.result(10).ok
            assert all(f.result(10).ok for f in queued)
        finally:
            handle.join()
        daemon = handle.daemon
        assert daemon.metrics["completed"] == 4
        assert daemon.metrics["failed"] == 0
        assert len(daemon.queue) == 0 and daemon._in_flight == 0

    def test_draining_daemon_rejects_new_work(self):
        handle = start_daemon(workers=1)
        try:
            blocker = submit_async(handle, "sleep", {"seconds": 0.3})
            assert wait_until(lambda: handle.daemon._in_flight == 1)
            handle.stop(drain=True)
            assert wait_until(lambda: handle.daemon.draining)
            late = submit_async(handle, "sleep", {"seconds": 0.0}).result(5)
            assert not late.ok and late.code == "draining"
            assert late.retry_after_s is not None
            assert blocker.result(5).ok
        finally:
            handle.join()


class TestTelemetry:
    def test_metrics_match_session_last_execution(self):
        handle = start_daemon(workers=1)
        try:
            response = submit_async(
                handle,
                "sweep",
                {
                    "base": {"scene": "lego", "resolution_scale": 0.25},
                    "grid": {"num_hfu": [2, 4]},
                },
            ).result(120)
            assert response.ok
            assert response.result["execution"] is not None
            metrics = handle.daemon.metrics_snapshot()
            actor = handle.daemon.actors[0]
            assert actor.session is not None
            # /metrics surfaces exactly the session's last execution report.
            assert metrics["execution"] == actor.session.last_execution.to_dict()
            assert metrics["execution"]["specs"] == 2
            # Engine counters in /metrics are the shared render service's.
            assert metrics["engine"] == handle.daemon.service.stats()
        finally:
            handle.stop()
            handle.join()

    def test_http_scrape_healthz_and_metrics(self):
        handle = start_daemon(workers=2)
        try:
            assert submit_async(handle, "sleep", {"seconds": 0.0}).result(5).ok
            health = scrape_http(handle.address, "/healthz")
            assert health["status"] == "healthy"
            assert health["actors_alive"] == 2
            metrics = scrape_http(handle.address, "/metrics")
            assert metrics["requests"]["completed"] == 1
            assert metrics["queue"]["max_depth"] == 8
            assert isinstance(metrics["shm"]["leaked_segments"], list)
            with pytest.raises(Exception):
                scrape_http(handle.address, "/nope")
        finally:
            handle.stop()
            handle.join()


class TestProtocolOverSockets:
    def test_render_and_control_round_trip(self):
        handle = start_daemon(workers=1)
        try:
            with handle.client(client="itest", timeout=120) as client:
                assert client.ping()["pong"] is True
                first = client.render("lego", resolution_scale=0.25)
                second = client.render("lego", resolution_scale=0.25)
                assert first.ok and second.ok
                # Deterministic engine: identical request, identical image.
                assert (
                    first.result["image_sha256"] == second.result["image_sha256"]
                )
                assert client.health()["status"] == "healthy"
                assert client.metrics()["requests"]["completed"] == 2
        finally:
            handle.stop()
            handle.join()

    def test_bad_request_gets_error_not_disconnect(self):
        handle = start_daemon(workers=1)
        try:
            with handle.client() as client:
                client._sock.sendall(b"this is not json\n")
                import json

                line = client._file.readline()
                message = json.loads(line)
                assert message["ok"] is False
                assert message["code"] == "bad_request"
                # The connection survives and serves the next request.
                assert client.ping()["pong"] is True
        finally:
            handle.stop()
            handle.join()

    def test_unix_socket_transport(self, tmp_path):
        path = str(tmp_path / "repro.sock")
        handle = start_daemon(workers=1, unix_path=path)
        try:
            assert handle.address == ("unix", path)
            with handle.client(client="unix") as client:
                assert client.submit("sleep", {"seconds": 0.0}).ok
            assert scrape_http(handle.address, "/healthz")["status"] == "healthy"
        finally:
            handle.stop()
            handle.join()


class TestTrajectoryRequests:
    def test_trajectory_round_trip_reports_temporal_telemetry(self):
        handle = start_daemon(workers=1)
        try:
            with handle.client(client="traj", timeout=120) as client:
                response = client.trajectory(
                    scene="lego", path="orbit", frames=16, resolution_scale=0.25
                )
                assert response.ok, response.error
                result = response.result
                assert result["label"] == "lego/orbitx16"
                assert result["frames"] == 16
                assert len(result["image_checksums"]) == 16
                # A 16-frame orbit stays under the teleport threshold, so
                # the carry path warms up after the cold first frame (the
                # rotating orders still revalidate — that is the contract).
                assert result["metrics"]["warm_frames"] == 15
                assert result["metrics"]["revalidated"] > 0
                # A repeated-pose trajectory carries everything after the
                # cold first frame; the counters surface through /metrics.
                from repro.scenes.registry import trajectory_cameras

                pose = trajectory_cameras(
                    "lego", "orbit", 4, resolution_scale=0.25
                )[0]
                repeated = client.trajectory(
                    scene="lego",
                    path=[
                        {
                            "rotation": pose.rotation.reshape(-1).tolist(),
                            "translation": pose.translation.tolist(),
                            "width": pose.width,
                            "height": pose.height,
                            "fx": pose.fx,
                            "fy": pose.fy,
                        }
                    ]
                    * 3,
                )
                assert repeated.ok, repeated.error
                assert repeated.result["path"] == "custom"
                assert repeated.result["metrics"]["carried_voxels"] > 0
                temporal = client.metrics()["engine"]["temporal"]
                assert temporal["frames"] >= 19
                assert temporal["carried_voxels"] > 0
        finally:
            handle.stop()
            handle.join()

    def test_trajectory_spec_object_and_fair_cost(self):
        from repro.api.spec import TrajectorySpec
        from repro.service.protocol import ServiceRequest

        spec = TrajectorySpec(scene="lego", path="dolly", frames=4, resolution_scale=0.25)
        request = ServiceRequest(kind="trajectory", payload={"spec": spec.to_dict()})
        assert ServiceDaemon._cost_of(request) == 4.0
        handle = start_daemon(workers=1)
        try:
            with handle.client(client="traj", timeout=120) as client:
                response = client.trajectory(spec)
                assert response.ok, response.error
                assert response.result["path"] == "dolly"
                with pytest.raises(TypeError, match="not both"):
                    client.trajectory(spec, frames=8)
        finally:
            handle.stop()
            handle.join()


class TestDegradation:
    def test_overload_downshifts_resolution_scale(self):
        handle = start_daemon(workers=1, degrade_depth=0)
        try:
            response = submit_async(
                handle, "render", {"scene": "lego", "resolution_scale": 0.5}
            ).result(60)
            assert response.ok
            degraded = response.meta["degraded"]
            assert degraded["resolution_scale"] == pytest.approx(0.25)
            assert degraded["requested_resolution_scale"] == pytest.approx(0.5)
            # The render actually ran at the downshifted scale.
            assert response.result["resolution_scale"] == pytest.approx(0.25)
            assert handle.daemon.metrics["degraded"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_overload_downshifts_trajectory_resolution_scale(self):
        handle = start_daemon(workers=1, degrade_depth=0)
        try:
            response = submit_async(
                handle,
                "trajectory",
                {"spec": {"scene": "lego", "path": "dolly", "frames": 2,
                          "resolution_scale": 0.5}},
            ).result(120)
            assert response.ok
            degraded = response.meta["degraded"]
            assert degraded["resolution_scale"] == pytest.approx(0.25)
            assert response.result["resolution_scale"] == pytest.approx(0.25)
        finally:
            handle.stop()
            handle.join()

    def test_crash_retried_request_keeps_first_dispatch_scale(self):
        # Regression: degradation used to be re-evaluated on every
        # dispatch, so a crash-retried request (re-admitted front-of-queue
        # by the supervisor) had its resolution_scale halved a second time
        # and metrics["degraded"] double-counted.
        handle = start_daemon(workers=1, degrade_depth=0)
        try:
            response = submit_async(
                handle,
                "render",
                {
                    "scene": "lego",
                    "resolution_scale": 0.5,
                    "inject_crash_attempts": 1,
                },
            ).result(60)
            assert response.ok
            assert response.meta["attempts"] == 2  # crashed once, retried
            degraded = response.meta["degraded"]
            # The retry renders at the FIRST dispatch's scale (0.5 -> 0.25),
            # not a twice-degraded 0.125.
            assert degraded["resolution_scale"] == pytest.approx(0.25)
            assert response.result["resolution_scale"] == pytest.approx(0.25)
            assert handle.daemon.metrics["degraded"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_no_degradation_below_threshold(self):
        handle = start_daemon(workers=1, degrade_depth=4)
        try:
            response = submit_async(
                handle, "render", {"scene": "lego", "resolution_scale": 0.25}
            ).result(60)
            assert response.ok
            assert "degraded" not in response.meta
        finally:
            handle.stop()
            handle.join()


class TestDegradedResultCaching:
    """A queue-degraded result must never be cached under the undegraded
    spec's hash: the daemon rewrites the payload spec *before* the actor
    parses it, so the store keys on the spec that actually rendered."""

    def test_degraded_trajectory_caches_under_degraded_key_only(self, tmp_path):
        from repro.api.spec import TrajectorySpec
        from repro.api.store import ResultStore

        cache_dir = str(tmp_path / "store")
        handle = start_daemon(workers=1, degrade_depth=0, cache_dir=cache_dir)
        try:
            response = submit_async(
                handle,
                "trajectory",
                {"spec": {"scene": "lego", "path": "dolly", "frames": 2,
                          "resolution_scale": 0.5}},
            ).result(120)
            assert response.ok
            assert response.meta["degraded"]["resolution_scale"] == pytest.approx(0.25)
        finally:
            handle.stop()
            handle.join()
        store = ResultStore(cache_dir)
        requested = TrajectorySpec(
            scene="lego", path="dolly", frames=2, resolution_scale=0.5
        )
        degraded = requested.with_options(resolution_scale=0.25)
        assert store.get(degraded) is not None
        assert store.get(requested) is None

    def test_degraded_sweep_caches_under_degraded_key_only(self, tmp_path):
        from repro.api.spec import ExperimentSpec, sweep
        from repro.api.store import ResultStore

        cache_dir = str(tmp_path / "store")
        handle = start_daemon(workers=1, degrade_depth=0, cache_dir=cache_dir)
        try:
            response = submit_async(
                handle,
                "sweep",
                {"base": {"scene": "lego", "resolution_scale": 0.5},
                 "grid": {"num_hfu": [2]}},
            ).result(120)
            assert response.ok
        finally:
            handle.stop()
            handle.join()
        store = ResultStore(cache_dir)
        requested = sweep(
            ExperimentSpec(scene="lego", resolution_scale=0.5), num_hfu=[2]
        )[0]
        degraded = sweep(
            ExperimentSpec(scene="lego", resolution_scale=0.25), num_hfu=[2]
        )[0]
        assert store.get(degraded) is not None
        assert store.get(requested) is None


class TestJournalResume:
    def test_hard_stop_resumes_in_flight_work(self, tmp_path):
        journal_dir = str(tmp_path / "journal")
        first = start_daemon(workers=1, journal_dir=journal_dir)
        try:
            # One request mid-execution (too slow to finish before the
            # 2s actor join timeout) and one still queued.
            submit_async(first, "sleep", {"seconds": 10.0})
            assert wait_until(lambda: first.daemon._in_flight == 1)
            submit_async(first, "sleep", {"seconds": 0.02})
            assert wait_until(lambda: len(first.daemon.queue) == 1)
            assert len(first.daemon.journal) == 2
        finally:
            first.stop(drain=False)
            first.join()
        assert len(first.daemon.journal) == 2  # hard stop loses nothing

        second = start_daemon(workers=2, journal_dir=journal_dir)
        try:
            assert second.daemon.metrics["resumed"] == 2
            events = [e["event"] for e in second.daemon.events]
            assert "journal_resumed" in events
            # The short resumed request completes and leaves the journal;
            # the long one is back in flight.
            assert wait_until(lambda: len(second.daemon.journal) == 1, timeout=10)
            assert second.daemon._in_flight >= 1
        finally:
            second.stop(drain=False)
            second.join()
