"""Journal unit tests: persistence, discard, corrupt-entry tolerance."""

import json

from repro.service.protocol import ServiceRequest
from repro.service.supervisor import Journal


class TestJournal:
    def test_record_pending_discard(self, tmp_path):
        journal = Journal(tmp_path / "journal")
        first = ServiceRequest(kind="sleep", payload={"seconds": 0}, id="a1")
        second = ServiceRequest(kind="render", payload={"scene": "lego"}, id="a2")
        journal.record(second, accepted_at=200.0)
        journal.record(first, accepted_at=100.0)
        assert len(journal) == 2
        pending = journal.pending()
        assert [entry["id"] for entry in pending] == ["a1", "a2"]  # oldest first
        assert pending[1]["payload"] == {"scene": "lego"}
        journal.discard("a1")
        assert [entry["id"] for entry in journal.pending()] == ["a2"]
        journal.discard("a1")  # idempotent
        journal.discard("a2")
        assert len(journal) == 0

    def test_corrupt_entry_moved_aside(self, tmp_path):
        root = tmp_path / "journal"
        journal = Journal(root)
        journal.record(ServiceRequest(kind="sleep", id="ok"), accepted_at=1.0)
        (root / "req-bad.json").write_text("{truncated")
        (root / "req-shape.json").write_text(json.dumps({"no": "kind"}))
        pending = journal.pending()
        assert [entry["id"] for entry in pending] == ["ok"]
        assert (root / "req-bad.json.corrupt").exists()
        assert (root / "req-shape.json.corrupt").exists()
        assert len(journal) == 1  # corrupt files no longer counted

    def test_disabled_journal_is_inert(self):
        journal = Journal(None)
        assert not journal.enabled
        journal.record(ServiceRequest(kind="sleep", id="x"), accepted_at=0.0)
        journal.discard("x")
        assert journal.pending() == []
        assert len(journal) == 0
