"""Wire-protocol unit tests: framing, validation, round trips."""

import json

import pytest

from repro.service.protocol import (
    CONTROL_KINDS,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    ServiceRequest,
    ServiceResponse,
    WORK_KINDS,
    decode_message,
    encode_message,
    error_response,
)


class TestFraming:
    def test_encode_decode_round_trip(self):
        message = {"kind": "render", "payload": {"scene": "lego"}, "id": "r1"}
        frame = encode_message(message)
        assert frame.endswith(b"\n")
        assert frame.count(b"\n") == 1  # JSON escapes embedded newlines
        assert decode_message(frame) == message

    def test_embedded_newlines_stay_escaped(self):
        frame = encode_message({"error": "line one\nline two"})
        assert frame.count(b"\n") == 1
        assert decode_message(frame)["error"] == "line one\nline two"

    def test_oversized_message_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"x" * (MAX_MESSAGE_BYTES + 1))

    def test_garbage_rejected(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2, 3]\n")  # not an object


class TestRequest:
    def test_round_trip(self):
        request = ServiceRequest(
            kind="sweep", payload={"grid": {"num_hfu": [1, 2]}}, client="bench"
        )
        clone = ServiceRequest.from_wire(
            decode_message(encode_message(request.to_wire()))
        )
        assert clone == request

    def test_kind_validated(self):
        with pytest.raises(ProtocolError):
            ServiceRequest(kind="explode")
        with pytest.raises(ProtocolError):
            ServiceRequest.from_wire({"payload": {}})

    def test_every_kind_is_work_or_control(self):
        assert not set(WORK_KINDS) & set(CONTROL_KINDS)
        for kind in WORK_KINDS + CONTROL_KINDS:
            assert ServiceRequest(kind=kind).kind == kind

    def test_payload_must_be_object(self):
        with pytest.raises(ProtocolError):
            ServiceRequest(kind="render", payload=[1, 2])


class TestResponse:
    def test_success_round_trip(self):
        response = ServiceResponse(ok=True, result={"psnr": 31.5}, id="r9")
        response.meta["attempts"] = 1
        clone = ServiceResponse.from_wire(
            decode_message(encode_message(response.to_wire()))
        )
        assert clone.ok and clone.result == {"psnr": 31.5}
        assert clone.meta["attempts"] == 1

    def test_reject_carries_retry_after(self):
        response = error_response("queue_full", "full", "r1", retry_after_s=0.25)
        wire = response.to_wire()
        assert wire["code"] == "queue_full"
        assert wire["retry_after_s"] == pytest.approx(0.25)
        clone = ServiceResponse.from_wire(json.loads(encode_message(wire)))
        assert not clone.ok
        assert clone.retry_after_s == pytest.approx(0.25)
