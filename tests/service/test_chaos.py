"""Chaos fault-injection layer and end-to-end service hardening tests.

Unit coverage of the plan/injector machinery (determinism, cadence,
caps, the install/uninstall identity guard) plus integration coverage of
every hardening path the chaos layer exists to exercise: idempotent
reconnect-and-resend, end-to-end deadlines, wedged-actor quarantine, the
per-kind circuit breaker, torn journal writes, store faults and shm
attach failures.
"""

import errno
import json
import time

import pytest

from repro import chaos
from repro.chaos import (
    FAULT_POINTS,
    ChaosInjector,
    FaultPlan,
    FaultRule,
    build_injector,
)
from repro.service.breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from repro.service.client import ServiceClient, ServiceConnectionError
from repro.service.daemon import ServiceConfig, ServiceDaemon
from repro.service.protocol import ServiceRequest
from repro.service.supervisor import Journal


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test starts and ends with chaos uninstalled."""
    chaos.uninstall()
    yield
    chaos.uninstall()


def start_daemon(**overrides):
    config = ServiceConfig(
        port=0,
        workers=overrides.pop("workers", 1),
        queue_limit=overrides.pop("queue_limit", 8),
        supervisor_interval_s=overrides.pop("supervisor_interval_s", 0.02),
        **overrides,
    )
    return ServiceDaemon(config).start_in_thread()


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


class TestFaultPlan:
    def test_round_trips_through_dict_and_json(self, tmp_path):
        plan = FaultPlan(
            seed=9,
            rules=[
                FaultRule(point="actor.crash", every_nth=3),
                FaultRule(point="transport.drop_response", probability=0.5),
            ],
        )
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        assert FaultPlan.parse(json.dumps(plan.to_dict())) == plan
        path = tmp_path / "plan.json"
        plan.save(path)
        assert FaultPlan.parse(str(path)) == plan
        assert len(plan) == 2
        assert plan.points() == ["actor.crash", "transport.drop_response"]

    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultRule(point="actor.explode", every_nth=1)

    def test_probability_bounds_enforced(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(point="actor.crash", probability=1.5)

    def test_rule_needs_a_firing_policy(self):
        with pytest.raises(ValueError, match="no firing policy"):
            FaultRule(point="actor.crash")

    def test_every_registered_point_documented(self):
        for point, description in FAULT_POINTS.items():
            assert "." in point and description


class TestChaosInjector:
    def test_same_plan_same_seed_fires_identically(self):
        plan = FaultPlan(
            seed=21,
            rules=[FaultRule(point="actor.crash", probability=0.3)],
        )
        a = ChaosInjector(plan)
        b = ChaosInjector(plan)
        sequence_a = [a.fire("actor.crash") is not None for _ in range(200)]
        sequence_b = [b.fire("actor.crash") is not None for _ in range(200)]
        assert sequence_a == sequence_b
        assert any(sequence_a) and not all(sequence_a)

    def test_different_seed_fires_differently(self):
        rules = [FaultRule(point="actor.crash", probability=0.3)]
        a = ChaosInjector(FaultPlan(seed=1, rules=rules))
        b = ChaosInjector(FaultPlan(seed=2, rules=rules))
        assert [a.fire("actor.crash") for _ in range(200)] != [
            b.fire("actor.crash") for _ in range(200)
        ]

    def test_every_nth_cadence_and_max_fires(self):
        plan = FaultPlan(
            seed=0,
            rules=[FaultRule(point="actor.hang", every_nth=3, max_fires=2)],
        )
        injector = ChaosInjector(plan)
        fired = [injector.fire("actor.hang") is not None for _ in range(12)]
        # Fires on calls 3 and 6, then the cap stops calls 9 and 12.
        assert fired == [False, False, True, False, False, True] + [False] * 6
        assert injector.stats()["actor.hang"] == {"calls": 12, "fires": 2}
        assert injector.fired_points() == ["actor.hang"]

    def test_unmatched_point_counts_calls_only(self):
        injector = ChaosInjector(
            FaultPlan(seed=0, rules=[FaultRule(point="actor.crash", every_nth=1)])
        )
        assert injector.fire("store.enospc") is None
        assert injector.stats()["store.enospc"] == {"calls": 1, "fires": 0}

    def test_build_injector_forms(self):
        assert build_injector(None) is None
        assert build_injector(FaultPlan(seed=0, rules=[])) is None
        built = build_injector(
            {"seed": 3, "rules": [{"point": "actor.crash", "every_nth": 2}]}
        )
        assert isinstance(built, ChaosInjector)
        assert built.plan.seed == 3


class TestInstallUninstall:
    def test_disabled_fault_returns_none(self):
        assert chaos.installed() is None
        assert chaos.fault("actor.crash") is None

    def test_install_and_fault_round_trip(self):
        injector = ChaosInjector(
            FaultPlan(seed=0, rules=[FaultRule(point="actor.crash", every_nth=1)])
        )
        chaos.install(injector)
        assert chaos.installed() is injector
        rule = chaos.fault("actor.crash")
        assert rule is not None and rule.point == "actor.crash"
        chaos.uninstall()
        assert chaos.installed() is None

    def test_uninstall_identity_guard(self):
        # A daemon tearing down must not clobber a newer daemon's injector.
        old = ChaosInjector(
            FaultPlan(seed=0, rules=[FaultRule(point="actor.crash", every_nth=1)])
        )
        new = ChaosInjector(
            FaultPlan(seed=1, rules=[FaultRule(point="actor.hang", every_nth=1)])
        )
        chaos.install(old)
        chaos.install(new)
        chaos.uninstall(expected=old)  # stale teardown: no-op
        assert chaos.installed() is new
        chaos.uninstall(expected=new)
        assert chaos.installed() is None


class TestDeadlines:
    def test_request_validates_deadline(self):
        with pytest.raises(ValueError, match="deadline_s"):
            ServiceRequest(kind="sleep", deadline_s=-1.0)
        wired = ServiceRequest(kind="sleep", deadline_s=2.5).to_wire()
        assert wired["deadline_s"] == 2.5
        assert "deadline_s" not in ServiceRequest(kind="sleep").to_wire()

    def test_expired_deadline_shed_from_queue(self):
        handle = start_daemon(workers=1)
        try:
            with handle.client(client="deadline") as client:
                blocker_client = handle.client(client="blocker")
                try:
                    import threading

                    blocker_done = []
                    blocker = threading.Thread(
                        target=lambda: blocker_done.append(
                            blocker_client.submit("sleep", {"seconds": 0.5})
                        )
                    )
                    blocker.start()
                    assert wait_until(lambda: handle.daemon._in_flight == 1)
                    response = client.submit(
                        "sleep", {"seconds": 0.0}, deadline_s=0.1
                    )
                    assert not response.ok
                    assert response.code == "deadline_exceeded"
                    blocker.join()
                    assert blocker_done[0].ok
                finally:
                    blocker_client.close()
            assert handle.daemon.metrics["deadline_exceeded"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_generous_deadline_completes(self):
        handle = start_daemon(workers=1)
        try:
            with handle.client(client="ok") as client:
                response = client.submit("sleep", {"seconds": 0.0}, deadline_s=30.0)
                assert response.ok
        finally:
            handle.stop()
            handle.join()


class TestIdempotentResend:
    def _drop_plan(self, max_fires=1):
        return FaultPlan(
            seed=5,
            rules=[
                FaultRule(
                    point="transport.drop_response",
                    every_nth=1,
                    max_fires=max_fires,
                )
            ],
        )

    def test_dropped_response_resent_from_cache_without_reexecution(self):
        handle = start_daemon(workers=1, chaos=self._drop_plan())
        try:
            with handle.client(client="resend", reconnect=2) as client:
                response = client.submit("sleep", {"seconds": 0.01})
                assert response.ok
                assert client.resends == 1
            metrics = handle.daemon.metrics_snapshot()
            # Executed once, served twice: the resend hit the response
            # cache instead of re-running the work.
            assert metrics["requests"]["completed"] == 1
            assert metrics["requests"]["resends_served"] == 1
            assert metrics["response_cache"]["size"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_torn_frame_detected_and_resent(self):
        plan = FaultPlan(
            seed=6,
            rules=[
                FaultRule(
                    point="transport.partial_write", every_nth=1, max_fires=1
                )
            ],
        )
        handle = start_daemon(workers=1, chaos=plan)
        try:
            with handle.client(client="torn", reconnect=2) as client:
                response = client.submit("sleep", {"seconds": 0.0})
                assert response.ok
                assert client.resends == 1
            assert handle.daemon.metrics["completed"] == 1
        finally:
            handle.stop()
            handle.join()

    def test_exhausted_budget_raises_typed_error_and_fails_fast(self):
        # Two drops against a budget of zero: the typed error carries the
        # request id, and the dead connection then fails fast instead of
        # hanging on a desynchronized stream.
        handle = start_daemon(workers=1, chaos=self._drop_plan(max_fires=2))
        try:
            with handle.client(client="unlucky", reconnect=0) as client:
                with pytest.raises(ServiceConnectionError) as excinfo:
                    client.submit("sleep", {"seconds": 0.0})
                assert excinfo.value.request_id.startswith("unlucky-")
                assert excinfo.value.client == "unlucky"
                started = time.monotonic()
                with pytest.raises(ServiceConnectionError):
                    client.submit("sleep", {"seconds": 0.0})
                assert time.monotonic() - started < 1.0  # fail fast, no hang
        finally:
            handle.stop()
            handle.join()


class TestSingleIdAcrossAdmissionRetries:
    def test_admission_retries_reuse_one_request_id(self):
        # Regression: submit used to mint a fresh id per resubmission, so
        # one logical request looked like N requests to the daemon.
        handle = start_daemon(workers=1, queue_limit=1)
        try:
            import threading

            blocker_client = handle.client(client="hog")
            filler_client = handle.client(client="hog2")
            try:
                results = []
                blocker = threading.Thread(
                    target=lambda: results.append(
                        blocker_client.submit("sleep", {"seconds": 0.4})
                    )
                )
                blocker.start()
                assert wait_until(lambda: handle.daemon._in_flight == 1)
                filler = threading.Thread(
                    target=lambda: results.append(
                        filler_client.submit("sleep", {"seconds": 0.0})
                    )
                )
                filler.start()
                assert wait_until(lambda: len(handle.daemon.queue) == 1)

                with handle.client(client="patient") as client:
                    seen_ids = []
                    original = client._roundtrip

                    def recording(request):
                        seen_ids.append(request.id)
                        return original(request)

                    client._roundtrip = recording
                    response = client.submit(
                        "sleep", {"seconds": 0.0}, retries=30
                    )
                    assert response.ok
                    assert client.backoffs >= 1  # it was rejected first
                    assert len(seen_ids) >= 2  # resubmitted at least once
                    assert len(set(seen_ids)) == 1  # ...under ONE id
                blocker.join()
                filler.join()
                assert all(r.ok for r in results)
            finally:
                blocker_client.close()
                filler_client.close()
        finally:
            handle.stop()
            handle.join()


class TestQuarantine:
    def test_wedged_actor_quarantined_and_replaced(self):
        # A sleep executes as one uninterruptible call with no heartbeats,
        # so with an aggressive watchdog it is indistinguishable from a
        # wedge: stall-flagged once, quarantined once, replaced in-slot.
        handle = start_daemon(
            workers=1,
            heartbeat_timeout_s=0.1,
            quarantine_after_s=0.25,
        )
        try:
            import threading

            done = []
            wedged_client = handle.client(client="wedged")
            try:
                wedged = threading.Thread(
                    target=lambda: done.append(
                        wedged_client.submit("sleep", {"seconds": 1.0})
                    )
                )
                wedged.start()
                assert wait_until(
                    lambda: handle.daemon.supervisor.quarantined == 1, timeout=5
                )
                health = handle.daemon.healthz()
                assert health["status"] == "degraded"
                assert health["quarantined"] == 1
                # Capacity is restored: the replacement serves new work
                # while the wedged thread is still sleeping.
                with handle.client(client="probe") as probe:
                    assert probe.submit("sleep", {"seconds": 0.0}).ok
                # The wedged request still completes and is delivered.
                wedged.join()
                assert done[0].ok
                # Once the wedged actor finishes it is retired, never
                # returned to dispatch, and health goes green again.
                assert wait_until(
                    lambda: not handle.daemon.quarantined_actors, timeout=5
                )
                assert wait_until(
                    lambda: handle.daemon.healthz()["status"] == "healthy",
                    timeout=5,
                )
                stats = handle.daemon.supervisor.stats()
                assert stats["quarantined"] == 1
                events = [e["event"] for e in handle.daemon.events]
                assert "actor_quarantined" in events
                assert "actor_unquarantined" in events
            finally:
                wedged_client.close()
        finally:
            handle.stop()
            handle.join()


class TestStallAccounting:
    def test_stall_counted_once_per_incident_with_recovery_reset(self):
        # Regression: the supervisor used to bump `stalled` on every sweep
        # while an actor was busy-stale, so one slow request inflated the
        # counter by hundreds.
        handle = start_daemon(
            workers=1,
            heartbeat_timeout_s=0.05,
            quarantine_after_s=30.0,  # stall, but never quarantine
        )
        try:
            import threading

            done = []
            slow_client = handle.client(client="slow")
            try:
                slow = threading.Thread(
                    target=lambda: done.append(
                        slow_client.submit("sleep", {"seconds": 0.4})
                    )
                )
                slow.start()
                # Many sweeps happen during the 0.4s sleep; one incident.
                assert wait_until(
                    lambda: handle.daemon.supervisor.stalled == 1, timeout=5
                )
                time.sleep(0.15)  # several more sweeps
                assert handle.daemon.supervisor.stalled == 1
                slow.join()
                assert done[0].ok
                # Recovery re-arms the flag: a second slow request is a
                # second incident.
                done.clear()
                slow2 = threading.Thread(
                    target=lambda: done.append(
                        slow_client.submit("sleep", {"seconds": 0.3})
                    )
                )
                slow2.start()
                assert wait_until(
                    lambda: handle.daemon.supervisor.stalled == 2, timeout=5
                )
                slow2.join()
                assert done[0].ok
                events = [e["event"] for e in handle.daemon.events]
                assert "actor_recovered" in events
            finally:
                slow_client.close()
        finally:
            handle.stop()
            handle.join()


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers_via_probe(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=0.1)
        assert breaker.allow("render") == (True, None)
        breaker.record_failure("render")
        assert breaker.state("render") == CLOSED
        breaker.record_failure("render")
        assert breaker.state("render") == OPEN
        allowed, retry_after = breaker.allow("render")
        assert not allowed and retry_after is not None and retry_after > 0
        assert breaker.open_kinds() == ["render"]
        assert breaker.tripped == 1
        time.sleep(0.12)
        # Cooldown elapsed: exactly one probe is admitted.
        assert breaker.allow("render") == (True, None)
        assert breaker.state("render") == HALF_OPEN
        assert breaker.allow("render")[0] is False  # concurrent arrival
        breaker.record_success("render")
        assert breaker.state("render") == CLOSED
        assert breaker.allow("render") == (True, None)
        assert breaker.open_kinds() == []

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown_s=0.05)
        breaker.record_failure("sweep")
        assert breaker.state("sweep") == OPEN
        time.sleep(0.06)
        assert breaker.allow("sweep")[0] is True  # the probe
        breaker.record_failure("sweep")  # probe crashed too
        assert breaker.state("sweep") == OPEN
        assert breaker.tripped == 2

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown_s=1.0)
        breaker.record_failure("render")
        breaker.record_success("render")
        breaker.record_failure("render")
        assert breaker.state("render") == CLOSED  # streak broken

    def test_config_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="cooldown"):
            CircuitBreaker(cooldown_s=0.0)

    def test_crashing_kind_trips_daemon_breaker(self):
        handle = start_daemon(
            workers=1,
            max_retries=0,
            breaker_threshold=1,
            breaker_cooldown_s=30.0,
        )
        try:
            with handle.client(client="crashy") as client:
                crashed = client.submit(
                    "sleep", {"seconds": 0.0, "inject_crash_attempts": 5}
                )
                assert not crashed.ok and crashed.code == "worker_crashed"
                rejected = client.submit("sleep", {"seconds": 0.0})
                assert not rejected.ok
                assert rejected.code == "circuit_open"
                assert rejected.retry_after_s and rejected.retry_after_s > 0
                # Only the crashing kind is tripped; others still flow.
                assert client.ping()["pong"] is True
            health = handle.daemon.healthz()
            assert health["status"] == "degraded"
            assert health["breaker_open_kinds"] == ["sleep"]
            assert handle.daemon.metrics["breaker_rejected"] == 1
        finally:
            handle.stop()
            handle.join()


class TestJournalTornWrite:
    def test_torn_journal_entry_healed_on_scan(self, tmp_path):
        plan = FaultPlan(
            seed=2,
            rules=[
                FaultRule(point="journal.torn_write", every_nth=1, max_fires=1)
            ],
        )
        chaos.install(build_injector(plan))
        root = tmp_path / "journal"
        journal = Journal(root)
        torn = ServiceRequest(kind="sleep", payload={"seconds": 0}, id="torn-1")
        intact = ServiceRequest(kind="sleep", payload={"seconds": 0}, id="ok-1")
        journal.record(torn, accepted_at=1.0)  # fault fires: half the JSON
        journal.record(intact, accepted_at=2.0)
        raw = (root / "req-torn-1.json").read_text()
        with pytest.raises(json.JSONDecodeError):
            json.loads(raw)
        # pending() degrades to losing the torn entry, never to crashing.
        assert [e["id"] for e in journal.pending()] == ["ok-1"]
        assert (root / "req-torn-1.json.corrupt").exists()
        assert len(journal) == 1


class TestStoreFaults:
    def _store(self, tmp_path):
        from repro.api import ExperimentResult, ExperimentSpec, ResultStore

        store = ResultStore(tmp_path / "cache")
        spec = ExperimentSpec(scene="lego")
        result = ExperimentResult(
            name="point",
            title="t",
            text="b",
            metrics={"speedup": 1.0},
        )
        return store, spec, result

    def test_enospc_surfaces_as_oserror(self, tmp_path):
        store, spec, result = self._store(tmp_path)
        plan = FaultPlan(
            seed=3,
            rules=[FaultRule(point="store.enospc", every_nth=1, max_fires=1)],
        )
        chaos.install(build_injector(plan))
        with pytest.raises(OSError) as excinfo:
            store.put(spec, result)
        assert excinfo.value.errno == errno.ENOSPC
        # The fault was one-shot; the store works again afterwards.
        store.put(spec, result)
        assert store.get(spec) is not None

    def test_corrupt_entry_becomes_miss_and_heals(self, tmp_path):
        store, spec, result = self._store(tmp_path)
        plan = FaultPlan(
            seed=4,
            rules=[
                FaultRule(point="store.corrupt_entry", every_nth=1, max_fires=1)
            ],
        )
        chaos.install(build_injector(plan))
        store.put(spec, result)  # fault truncates the entry post-write
        entry_path = store.path(spec)
        with pytest.raises(json.JSONDecodeError):
            json.loads(entry_path.read_text())
        assert store.get(spec) is None  # corrupt reads as a miss...
        assert not entry_path.exists()  # ...and the entry self-heals away
        store.put(spec, result)
        assert store.get(spec) is not None


class TestShmAttachFail:
    def test_attach_failure_raises_typed_error(self):
        from repro.api.shm import SharedMemoryUnavailable, _attach_segment

        plan = FaultPlan(
            seed=8,
            rules=[FaultRule(point="shm.attach_fail", every_nth=1, max_fires=1)],
        )
        chaos.install(build_injector(plan))
        with pytest.raises(SharedMemoryUnavailable, match="injected"):
            _attach_segment("repro-does-not-exist")


class TestChaosConfigPlumbing:
    def test_daemon_installs_and_uninstalls_injector(self):
        plan = FaultPlan(
            seed=1,
            rules=[FaultRule(point="actor.crash", every_nth=10_000)],
        )
        handle = start_daemon(workers=1, chaos=plan)
        try:
            assert chaos.installed() is handle.daemon.chaos_injector
            metrics = handle.daemon.metrics_snapshot()
            assert metrics["chaos"] is not None
            events = [e["event"] for e in handle.daemon.events]
            assert "chaos_installed" in events
        finally:
            handle.stop()
            handle.join()
        assert chaos.installed() is None  # identity-guarded teardown

    def test_chaos_free_daemon_reports_none(self):
        handle = start_daemon(workers=1)
        try:
            assert handle.daemon.chaos_injector is None
            assert handle.daemon.metrics_snapshot()["chaos"] is None
        finally:
            handle.stop()
            handle.join()

    def test_cli_parses_inline_plan_and_path(self, tmp_path):
        from repro.service.cli import build_parser, config_from_args

        plan_dict = {
            "seed": 12,
            "rules": [{"point": "actor.crash", "every_nth": 4}],
        }
        args = build_parser().parse_args(["--chaos-plan", json.dumps(plan_dict)])
        config = config_from_args(args)
        assert isinstance(config.chaos, FaultPlan)
        assert config.chaos.seed == 12

        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan_dict))
        args = build_parser().parse_args(["--chaos-plan", str(path)])
        assert config_from_args(args).chaos.seed == 12

    def test_cli_rejects_bad_plan(self):
        from repro.service.cli import build_parser, config_from_args

        args = build_parser().parse_args(
            ["--chaos-plan", '{"seed": 0, "rules": [{"point": "nope"}]}']
        )
        with pytest.raises(SystemExit, match="bad --chaos-plan"):
            config_from_args(args)
