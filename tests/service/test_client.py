"""Client-side backoff policy and service CLI parsing tests."""

import random

import pytest

from repro.service.cli import build_parser, config_from_args
from repro.service.client import (
    BACKOFF_JITTER,
    DEFAULT_BACKOFF_S,
    backoff_delay,
)
from repro.service.daemon import ServiceConfig, ServiceDaemon


class TestBackoffDelay:
    def test_zero_hint_is_honored_not_defaulted(self):
        # retry_after_s=0.0 means "retry immediately"; it used to be
        # treated as missing (falsy) and silently replaced by 0.1s.
        rng = random.Random(7)
        delays = [backoff_delay(0.0, rng=rng) for _ in range(64)]
        assert all(0.0 <= delay <= 0.01 for delay in delays)

    def test_missing_hint_falls_back_to_default(self):
        rng = random.Random(7)
        delay = backoff_delay(None, rng=rng)
        ceiling = DEFAULT_BACKOFF_S * (1 + BACKOFF_JITTER) + 0.01
        assert DEFAULT_BACKOFF_S <= delay <= ceiling

    def test_jitter_desynchronizes_lockstep_clients(self):
        rng = random.Random(42)
        delays = {backoff_delay(1.0, rng=rng) for _ in range(32)}
        assert len(delays) > 16  # not one synchronized sleep
        assert all(1.0 <= delay <= 1.0 * (1 + BACKOFF_JITTER) + 0.01 for delay in delays)

    def test_delay_never_exceeds_the_cap(self):
        rng = random.Random(3)
        for hint in (0.0, 0.4, 0.5, 60.0, None):
            assert backoff_delay(hint, max_backoff_s=0.5, rng=rng) <= 0.5

    def test_negative_hint_is_clamped_to_zero(self):
        assert 0.0 <= backoff_delay(-3.0, rng=random.Random(1)) <= 0.01


class TestClientWeightCli:
    def _config(self, *weights):
        args = build_parser().parse_args(
            [arg for weight in weights for arg in ("--client-weight", weight)]
        )
        return config_from_args(args)

    def test_valid_weight_round_trips(self):
        config = self._config("gold=2.5")
        assert config.client_weights == {"gold": 2.5}

    def test_zero_weight_rejected_with_clear_error(self):
        with pytest.raises(SystemExit, match="must be > 0"):
            self._config("bad=0")

    def test_negative_weight_rejected(self):
        with pytest.raises(SystemExit, match="must be > 0"):
            self._config("bad=-2")

    def test_non_numeric_weight_rejected(self):
        with pytest.raises(SystemExit, match="must be a number"):
            self._config("bad=heavy")

    def test_malformed_pair_rejected(self):
        with pytest.raises(SystemExit, match="NAME=WEIGHT"):
            self._config("no-equals-sign")

    def test_daemon_construction_validates_config_weights(self):
        # Weights smuggled past the CLI (programmatic config) still fail
        # fast at FairQueue construction instead of being coerced later.
        with pytest.raises(ValueError, match="must be > 0"):
            ServiceDaemon(ServiceConfig(port=0, client_weights={"bad": 0.0}))
