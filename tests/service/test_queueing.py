"""Fair-queue unit tests: admission bound, WFQ order, retry re-admission."""

import pytest

from repro.service.queueing import FairQueue, QueueFull


class TestAdmission:
    def test_bounded_push_raises_queue_full(self):
        queue = FairQueue(max_depth=2)
        queue.push("a", 1)
        queue.push("a", 2)
        with pytest.raises(QueueFull) as excinfo:
            queue.push("a", 3)
        assert excinfo.value.depth == 2
        assert queue.stats()["rejected"] == 1
        assert len(queue) == 2  # the reject admitted nothing

    def test_front_push_bypasses_the_bound(self):
        queue = FairQueue(max_depth=1)
        queue.push("a", "queued")
        queue.push("a", "retry", front=True)  # re-admission is exempt
        assert len(queue) == 2
        assert queue.pop() == "retry"  # and runs before the backlog
        assert queue.pop() == "queued"

    def test_counters(self):
        queue = FairQueue(max_depth=4)
        for i in range(3):
            queue.push("a", i)
        queue.pop()
        stats = queue.stats()
        assert stats["pushed"] == 3
        assert stats["popped"] == 1
        assert stats["peak_depth"] == 3
        assert stats["per_client_depth"] == {"a": 2}


class TestWeightValidation:
    def test_zero_weight_override_rejected_at_construction(self):
        with pytest.raises(ValueError, match="weight for client 'bad'"):
            FairQueue(weights={"bad": 0.0})

    def test_negative_weight_override_rejected_at_construction(self):
        with pytest.raises(ValueError, match="must be > 0"):
            FairQueue(weights={"ok": 2.0, "bad": -1.5})

    def test_non_numeric_weight_override_rejected(self):
        with pytest.raises(ValueError, match="must be a number"):
            FairQueue(weights={"bad": "heavy"})

    def test_valid_overrides_are_normalized_to_floats(self):
        queue = FairQueue(weights={"gold": 2})
        assert queue.weight_of("gold") == 2.0
        assert isinstance(queue.weight_of("gold"), float)
        assert queue.weight_of("anon") == queue.default_weight


class TestFairness:
    def test_burst_does_not_starve_light_client(self):
        queue = FairQueue(max_depth=16)
        for i in range(4):
            queue.push("hog", f"hog{i}")
        queue.push("mouse", "mouse0")
        queue.push("mouse", "mouse1")
        order = queue.drain()
        # Virtual-time WFQ interleaves the late mouse ahead of most of the
        # earlier burst instead of running it FIFO.
        assert order == ["hog0", "mouse0", "hog1", "mouse1", "hog2", "hog3"]

    def test_weighted_client_gets_larger_share(self):
        queue = FairQueue(max_depth=16, weights={"gold": 2.0})
        for i in range(4):
            queue.push("gold", f"gold{i}")
        for i in range(4):
            queue.push("silver", f"silver{i}")
        order = queue.drain()
        # gold (weight 2) finishes two items per silver item.
        assert order.index("gold1") < order.index("silver0") < order.index("gold3")

    def test_cost_charges_the_client_share(self):
        queue = FairQueue(max_depth=16)
        queue.push("sweeper", "big", cost=4.0)
        queue.push("sweeper", "after-big")
        queue.push("pinger", "ping")
        order = queue.drain()
        # The expensive sweep ate sweeper's share; pinger overtakes
        # everything whose finish tag the big request pushed out.
        assert order == ["ping", "big", "after-big"]

    def test_deterministic_for_fixed_push_sequence(self):
        def build():
            queue = FairQueue(max_depth=32)
            for i in range(3):
                queue.push("a", ("a", i))
                queue.push("b", ("b", i))
            queue.push("c", ("c", 0), cost=2.0)
            return queue.drain()

        assert build() == build()

    def test_idle_client_rejoins_at_current_virtual_time(self):
        queue = FairQueue(max_depth=16)
        for i in range(8):
            queue.push("busy", i)
        for _ in range(8):
            queue.pop()
        # "busy" accumulated finish tags up to 8; a fresh push from it
        # starts at the virtual clock, not at zero, so it cannot be
        # pre-empted by its own history — and a new client at the same
        # clock alternates fairly with it.
        queue.push("busy", "b0")
        queue.push("new", "n0")
        queue.push("busy", "b1")
        queue.push("new", "n1")
        assert queue.drain() == ["b0", "n0", "b1", "n1"]
