"""Top-level package surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.1.0"


def test_public_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_public_renderers_are_usable(tiny_model, tiny_camera):
    reference = repro.TileRasterizer().render(tiny_model, tiny_camera)
    renderer = repro.StreamingRenderer(tiny_model, repro.StreamingConfig(voxel_size=1.5))
    streaming = renderer.render(tiny_camera)
    assert reference.image.shape == streaming.image.shape


def test_scene_registry_exported():
    assert "truck" in repro.SCENE_REGISTRY
    model = repro.build_scene("lego", num_gaussians=64)
    assert len(model) == 64


def test_hardware_models_exported():
    assert repro.StreamingGSAccelerator().area_mm2() > 0
    assert repro.OrinNXModel().params.peak_flops > 0
    assert repro.GSCoreModel().config.num_render_units == 64
