"""Top-level package surface tests."""

import repro


def test_version():
    assert repro.__version__ == "1.10.0"


def test_public_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name) is not None


def test_public_renderers_are_usable(tiny_model, tiny_camera):
    reference = repro.TileRasterizer().render(tiny_model, tiny_camera)
    renderer = repro.StreamingRenderer(tiny_model, repro.StreamingConfig(voxel_size=1.5))
    streaming = renderer.render(tiny_camera)
    assert reference.image.shape == streaming.image.shape


def test_scene_registry_exported():
    assert "truck" in repro.SCENE_REGISTRY
    model = repro.build_scene("lego", num_gaussians=64)
    assert len(model) == 64


def test_hardware_models_exported():
    assert repro.StreamingGSAccelerator().area_mm2() > 0
    assert repro.OrinNXModel().params.peak_flops > 0
    assert repro.GSCoreModel().config.num_render_units == 64


def test_api_surface_exported():
    assert repro.Session is not None
    assert repro.ExperimentSpec().scene == "train"
    specs = repro.sweep(repro.ExperimentSpec(scene="lego"), voxel_size=(0.4, 0.8))
    assert len(specs) == 2
    assert repro.ExperimentResult is repro.api.ExperimentResult
    assert repro.get_default_session() is repro.get_default_session()


def test_legacy_import_paths_still_work():
    # Thin aliases kept for pre-API consumers.
    from repro.analysis import clear_context_cache, get_scene_context, run_fig12
    from repro.analysis.runner import EXPERIMENTS, run_experiment

    assert callable(get_scene_context) and callable(clear_context_cache)
    assert callable(run_fig12)
    assert "fig12" in EXPERIMENTS and callable(run_experiment)
