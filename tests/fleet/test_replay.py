"""Wire-protocol trace replay against an embedded daemon."""

import pytest

from repro.api.session import Session
from repro.fleet.aggregate import fleet_costs, percentile, summarize_replay
from repro.fleet.clients import replay_trace
from repro.fleet.traces import RequestClass, generate_trace
from repro.service.daemon import ServiceConfig, ServiceDaemon


def small_mixed_trace(seed=1):
    classes = [
        RequestClass(
            name="preview", kind="render", weight=4.0, scene="lego",
            resolution_scale=0.25, clients=2,
        ),
        RequestClass(
            name="walk", kind="trajectory", weight=1.0, scene="lego",
            resolution_scale=0.25, frames=2, path="dolly", clients=1,
        ),
        RequestClass(
            name="batch", kind="sweep", weight=1.0, scene="lego",
            resolution_scale=0.25, grid={"num_hfu": [2, 4]}, clients=1,
        ),
    ]
    return generate_trace(classes, duration_s=3.0, rate_hz=4.0, seed=seed)


class TestReplay:
    @pytest.fixture(scope="class")
    def replayed(self, tmp_path_factory):
        """One replay shared by the assertions below (daemons are costly)."""
        store = str(tmp_path_factory.mktemp("fleet-store"))
        trace = small_mixed_trace()
        daemon = ServiceDaemon(
            ServiceConfig(port=0, workers=2, queue_limit=32, cache_dir=store)
        )
        handle = daemon.start_in_thread()
        try:
            report = replay_trace(
                trace, handle.address, speed=3.0, retries=5, timeout=300.0
            )
        finally:
            handle.stop(drain=True)
            handle.join()
        return trace, report, store

    def test_every_event_completes_over_the_wire(self, replayed):
        trace, report, _ = replayed
        assert len(report.outcomes) == len(trace)
        assert report.completed == len(trace)
        assert report.failed == 0

    def test_mixed_kinds_all_served(self, replayed):
        trace, report, _ = replayed
        served = {outcome.kind for outcome in report.outcomes if outcome.ok}
        assert served == {"render", "trajectory", "sweep"}

    def test_summary_covers_every_class(self, replayed):
        trace, report, _ = replayed
        summary = summarize_replay(report, window_s=1.0)
        assert set(summary["classes"]) == {"preview", "walk", "batch"}
        overall = summary["overall"]
        assert overall["submitted"] == len(trace)
        assert overall["p50_s"] <= overall["p95_s"] <= overall["p99_s"]
        assert overall["throughput_rps"] == pytest.approx(len(trace) / 1.0)

    def test_frames_follow_request_kinds(self, replayed):
        trace, report, _ = replayed
        assert report.frames_completed == pytest.approx(trace.frames())

    def test_metrics_snapshot_scraped(self, replayed):
        _, report, _ = replayed
        assert report.daemon_metrics["requests"]["completed"] >= len(report.outcomes)
        assert "kinds" in report.daemon_metrics

    def test_fleet_costs_scale_per_frame_figures(self, replayed):
        trace, report, store = replayed
        with Session(store=store) as session:
            costs = fleet_costs(trace.classes, report, session, window_s=1.0)
        assert {c.name for c in costs.classes} == {"preview", "walk", "batch"}
        assert costs.frames == pytest.approx(report.frames_completed)
        assert costs.offered_fps == pytest.approx(report.frames_completed / 1.0)
        assert costs.required_bandwidth_bytes > 0
        assert costs.energy_j > 0
        preview = next(c for c in costs.classes if c.name == "preview")
        assert preview.required_bandwidth_bytes == pytest.approx(
            preview.dram_bytes_per_frame * preview.offered_fps
        )


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.95) == 0.0

    def test_nearest_rank(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 0.5) == 3.0
        assert percentile(samples, 1.0) == 5.0
