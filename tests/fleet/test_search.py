"""Pareto design-space search: frontier parity, savings, warm resume."""

import pytest

from repro.api.session import Session
from repro.api.spec import ExperimentSpec
from repro.fleet.search import (
    OBJECTIVES,
    DesignSpace,
    SearchPoint,
    dominates,
    exhaustive_frontier,
    pareto_frontier,
    pareto_search,
)

AXES = {
    "num_hfu": [1, 2, 4],
    "num_render_units": [32, 64, 128],
    "sram_scale": [0.5, 1.0],
}


def base_spec():
    return ExperimentSpec(scene="lego", resolution_scale=0.25)


def frontier_keys(result):
    return sorted(tuple(sorted(point.values.items())) for point in result.frontier)


class TestDominance:
    def test_dominates_requires_strict_improvement_somewhere(self):
        assert dominates((1.0, 1.0), (1.0, 2.0))
        assert not dominates((1.0, 2.0), (1.0, 2.0))
        assert not dominates((0.5, 3.0), (1.0, 2.0))

    def test_frontier_drops_dominated_points(self):
        points = [
            SearchPoint((0,), {"a": 0}, dict(zip(OBJECTIVES, (1.0, 1.0, 1.0)))),
            SearchPoint((1,), {"a": 1}, dict(zip(OBJECTIVES, (2.0, 2.0, 2.0)))),
            SearchPoint((2,), {"a": 2}, dict(zip(OBJECTIVES, (0.5, 3.0, 1.0)))),
        ]
        frontier = pareto_frontier(points)
        assert [point.index for point in frontier] == [(0,), (2,)]


class TestDesignSpace:
    def test_lattice_geometry(self):
        space = DesignSpace(tuple(AXES.items()))
        assert space.shape == (3, 3, 2)
        assert space.size == 18
        assert len(space.corners()) == 8
        assert space.center() == (1, 1, 1)
        assert set(space.neighbors((0, 0, 0))) == {(1, 0, 0), (0, 1, 0), (0, 0, 1)}

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError, match="unknown arch option"):
            DesignSpace((("warp_width", (1, 2)),))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            DesignSpace((("num_hfu", ()),))

    def test_spec_merges_arch_options_and_keeps_tag(self):
        space = DesignSpace((("num_hfu", (2, 4)),))
        base = base_spec()
        spec = space.spec(base, (1,))
        assert spec.arch_overrides == {"num_hfu": 4}
        assert spec.tag == base.tag == ""


class TestSearch:
    @pytest.fixture(scope="class")
    def searched(self, tmp_path_factory):
        """Search + exhaustive grid sharing one store (evaluations are cached)."""
        store = str(tmp_path_factory.mktemp("search-store"))
        with Session(store=store) as session:
            result = pareto_search(session, base_spec(), axes=AXES)
            search_points = session.points_run
            grid = exhaustive_frontier(session, base_spec(), axes=AXES)
        return result, grid, store, search_points

    def test_frontier_matches_exhaustive_grid(self, searched):
        result, grid, _, _ = searched
        assert frontier_keys(result) == frontier_keys(grid)

    def test_strictly_fewer_evaluations_than_grid(self, searched):
        result, grid, _, _ = searched
        assert grid.evaluations == 18
        assert result.evaluations < grid.evaluations

    def test_search_points_share_grid_cache_keys(self, searched):
        # The grid pass only evaluated what the search skipped: identical
        # lattice points hashed to the same ResultStore entries.
        result, grid, _, search_points = searched
        assert search_points == result.evaluations

    def test_warm_rerun_resumes_from_store_with_zero_renders(self, searched):
        result, _, store, _ = searched
        with Session(store=store) as session:
            rerun = session.pareto_search(base_spec(), **AXES)
            assert session.points_run == 0
        assert frontier_keys(rerun) == frontier_keys(result)

    def test_objectives_populated_on_every_point(self, searched):
        result, _, _, _ = searched
        for point in result.points:
            assert set(point.objectives) == set(OBJECTIVES)
            assert all(value > 0 for value in point.objectives.values())

    def test_max_evals_budget_is_respected(self, tmp_path):
        with Session(store=str(tmp_path)) as session:
            result = pareto_search(session, base_spec(), axes=AXES, max_evals=5)
        assert result.evaluations <= 5

    def test_needs_axes(self, tmp_path):
        with Session(store=str(tmp_path)) as session:
            with pytest.raises(ValueError, match="at least one axis"):
                pareto_search(session, base_spec(), axes={})
