"""Trace generation: determinism, serialization, arrival processes."""

import pytest

from repro.fleet.traces import (
    ARRIVAL_PROCESSES,
    RequestClass,
    Trace,
    default_classes,
    generate_trace,
)


class TestRequestClass:
    def test_render_payload_shape(self):
        klass = RequestClass(name="p", kind="render", scene="lego", resolution_scale=0.5)
        assert klass.payload() == {"scene": "lego", "resolution_scale": 0.5}
        assert klass.frames_per_event == 1.0

    def test_trajectory_payload_and_frames(self):
        klass = RequestClass(
            name="w", kind="trajectory", scene="train", frames=6, path="dolly",
            resolution_scale=0.25,
        )
        payload = klass.payload()
        assert payload["spec"]["path"] == "dolly"
        assert payload["spec"]["frames"] == 6
        assert klass.frames_per_event == 6.0

    def test_uncompressed_trajectory_disables_vq(self):
        klass = RequestClass(
            name="w", kind="trajectory", scene="train", compression="none"
        )
        assert klass.payload()["spec"]["config"] == {"use_vq": False}

    def test_sweep_frames_count_grid_points(self):
        klass = RequestClass(
            name="b", kind="sweep", grid={"num_hfu": [2, 4], "num_vsu": [1, 2]}
        )
        assert klass.frames_per_event == 4.0
        assert klass.payload()["grid"] == {"num_hfu": [2, 4], "num_vsu": [1, 2]}

    @pytest.mark.parametrize(
        "bad",
        [
            dict(name="x", kind="experiment"),
            dict(name="x", weight=0),
            dict(name="x", scene="nope"),
            dict(name="x", resolution_scale=0.0),
            dict(name="x", clients=0),
            dict(name="x", kind="sweep"),  # sweep without a grid
            dict(name=""),
        ],
    )
    def test_invalid_classes_rejected(self, bad):
        with pytest.raises(ValueError):
            RequestClass(**bad)

    def test_round_trips_through_dict(self):
        klass = RequestClass(
            name="b", kind="sweep", grid={"num_hfu": [2, 4]}, weight=2.5
        )
        assert RequestClass.from_dict(klass.to_dict()) == klass


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        a = generate_trace(duration_s=5.0, rate_hz=10.0, seed=7)
        b = generate_trace(duration_s=5.0, rate_hz=10.0, seed=7)
        assert a.to_dict() == b.to_dict()

    def test_different_seed_different_trace(self):
        a = generate_trace(duration_s=5.0, rate_hz=10.0, seed=7)
        b = generate_trace(duration_s=5.0, rate_hz=10.0, seed=8)
        assert a.to_dict() != b.to_dict()

    @pytest.mark.parametrize("arrival", ARRIVAL_PROCESSES)
    def test_arrivals_land_inside_the_window(self, arrival):
        trace = generate_trace(
            duration_s=4.0, rate_hz=15.0, seed=3, arrival=arrival
        )
        assert len(trace) > 0
        assert all(0.0 <= event.at_s < 4.0 for event in trace.events)
        # sorted by construction — replay relies on per-client order
        times = [event.at_s for event in trace.events]
        assert times == sorted(times)

    def test_mix_respects_class_weights_roughly(self):
        classes = [
            RequestClass(name="heavy", weight=9.0, clients=2),
            RequestClass(name="light", weight=1.0, clients=2),
        ]
        trace = generate_trace(classes, duration_s=30.0, rate_hz=30.0, seed=0)
        counts = {"heavy": 0, "light": 0}
        for event in trace.events:
            counts[event.klass] += 1
        assert counts["heavy"] > counts["light"] * 3

    def test_clients_stay_within_class_population(self):
        classes = [RequestClass(name="only", clients=3)]
        trace = generate_trace(classes, duration_s=10.0, rate_hz=20.0, seed=1)
        assert set(trace.clients) <= {"only-0", "only-1", "only-2"}

    def test_json_round_trip(self, tmp_path):
        trace = generate_trace(
            default_classes(2), duration_s=3.0, rate_hz=8.0, seed=5, arrival="bursty"
        )
        path = trace.save(tmp_path / "trace.json")
        assert Trace.load(path).to_dict() == trace.to_dict()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(duration_s=0.0),
            dict(rate_hz=0.0),
            dict(arrival="weekly"),
            dict(classes=[]),
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        defaults = dict(duration_s=1.0, rate_hz=1.0)
        defaults.update(kwargs)
        with pytest.raises(ValueError):
            generate_trace(**defaults)

    def test_duplicate_class_names_rejected(self):
        classes = [RequestClass(name="a"), RequestClass(name="a", scene="train")]
        with pytest.raises(ValueError, match="unique"):
            generate_trace(classes, duration_s=1.0, rate_hz=1.0)
