"""Tests for optimizers, losses and boundary-aware fine-tuning."""

import numpy as np
import pytest

from repro.core.voxel_grid import VoxelGrid, cross_boundary_mask
from repro.gaussians.metrics import psnr
from repro.gaussians.rasterizer import TileRasterizer
from repro.training.boundary_finetune import (
    boundary_aware_finetune,
    geometric_probe,
)
from repro.training.color_refinement import dc_color_refinement_step
from repro.training.losses import (
    combined_photometric_loss,
    cross_boundary_penalty,
    cross_boundary_penalty_gradient,
    l1_loss,
    total_loss,
)
from repro.training.optimizer import SGD, Adam
from tests.conftest import make_camera, make_model


# ---------------------------------------------------------------------------
# Optimizers
# ---------------------------------------------------------------------------
def test_sgd_step_direction():
    sgd = SGD(learning_rate=0.1)
    params = {"w": np.array([1.0, 2.0])}
    grads = {"w": np.array([1.0, -1.0])}
    updated = sgd.step(params, grads)
    np.testing.assert_allclose(updated["w"], [0.9, 2.1])


def test_sgd_momentum_accumulates():
    sgd = SGD(learning_rate=0.1, momentum=0.9)
    params = {"w": np.zeros(1)}
    grads = {"w": np.ones(1)}
    first = sgd.step(params, grads)
    second = sgd.step(first, grads)
    assert (first["w"] - params["w"])[0] > (second["w"] - first["w"])[0]  # both negative, second bigger step


def test_optimizer_validation():
    with pytest.raises(ValueError):
        SGD(learning_rate=0.0)
    with pytest.raises(ValueError):
        Adam(learning_rate=-1.0)
    with pytest.raises(ValueError):
        Adam(beta1=1.5)


def test_adam_converges_on_quadratic():
    adam = Adam(learning_rate=0.1)
    params = {"x": np.array([5.0])}
    for _ in range(200):
        grads = {"x": 2.0 * params["x"]}
        params = adam.step(params, grads)
    assert abs(params["x"][0]) < 0.1


def test_optimizers_skip_missing_grads():
    adam = Adam()
    params = {"a": np.ones(2), "b": np.ones(2)}
    updated = adam.step(params, {"a": np.ones(2)})
    np.testing.assert_allclose(updated["b"], params["b"])


# ---------------------------------------------------------------------------
# Losses
# ---------------------------------------------------------------------------
def test_l1_loss_and_validation():
    a = np.zeros((4, 4, 3))
    b = np.full((4, 4, 3), 0.5)
    assert l1_loss(a, b) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        l1_loss(a, np.zeros((3, 4, 3)))


def test_combined_photometric_loss_zero_for_identical():
    image = np.random.default_rng(0).uniform(0, 1, (16, 16, 3))
    assert combined_photometric_loss(image, image) == pytest.approx(0.0, abs=1e-9)
    with pytest.raises(ValueError):
        combined_photometric_loss(image, image, dssim_weight=2.0)


def test_cross_boundary_penalty_zero_without_crossings():
    model = make_model(num_gaussians=50, extent=4.0, scale=0.001, seed=3)
    penalty = cross_boundary_penalty(model, voxel_size=100.0)
    assert penalty == pytest.approx(0.0)


def test_cross_boundary_penalty_scales_with_size():
    model = make_model(num_gaussians=100, extent=4.0, scale=0.3, seed=4)
    small_voxels = cross_boundary_penalty(model, voxel_size=0.5)
    large_voxels = cross_boundary_penalty(model, voxel_size=50.0)
    assert small_voxels >= large_voxels


def test_cross_boundary_penalty_gradient_shape_and_support():
    model = make_model(num_gaussians=80, extent=4.0, scale=0.3, seed=5)
    indicator = cross_boundary_mask(model, 0.5)
    grad = cross_boundary_penalty_gradient(model, 0.5, indicator=indicator)
    assert grad.shape == (80, 3)
    # Gradient only on flagged Gaussians, one axis each.
    flagged_rows = np.any(grad > 0, axis=1)
    np.testing.assert_array_equal(flagged_rows, indicator.astype(bool))
    assert np.all((grad > 0).sum(axis=1) <= 1)


def test_total_loss_combines_terms():
    model = make_model(num_gaussians=60, extent=4.0, scale=0.3, seed=6)
    grid = VoxelGrid.build(model, voxel_size=0.5)
    image = np.random.default_rng(0).uniform(0, 1, (8, 8, 3))
    loss_without = total_loss(image, image, model, grid, beta=0.0)
    loss_with = total_loss(image, image, model, grid, beta=0.05)
    assert loss_with >= loss_without
    with pytest.raises(ValueError):
        total_loss(image, image, model, grid, beta=-1.0)


# ---------------------------------------------------------------------------
# Colour refinement
# ---------------------------------------------------------------------------
def test_color_refinement_reduces_error():
    model = make_model(num_gaussians=250, extent=4.0, scale=0.12, seed=7)
    camera = make_camera(width=40, height=40)
    rasterizer = TileRasterizer()
    target = rasterizer.render(model, camera).image
    # Perturb colours, then refine back towards the target.
    perturbed = model.copy()
    perturbed.sh_dc = (perturbed.sh_dc + 0.3).astype(np.float32)
    before = psnr(target, rasterizer.render(perturbed, camera).image)
    refined = perturbed
    for _ in range(3):
        refined = dc_color_refinement_step(refined, [camera], [target], damping=0.4)
    after = psnr(target, rasterizer.render(refined, camera).image)
    assert after > before


def test_color_refinement_validation(small_model, camera):
    image = np.zeros((camera.height, camera.width, 3))
    with pytest.raises(ValueError):
        dc_color_refinement_step(small_model, [camera], [image, image])
    with pytest.raises(ValueError):
        dc_color_refinement_step(small_model, [], [])
    with pytest.raises(ValueError):
        dc_color_refinement_step(small_model, [camera], [image], damping=0.0)
    with pytest.raises(ValueError):
        dc_color_refinement_step(small_model, [camera], [np.zeros((2, 2, 3))])


# ---------------------------------------------------------------------------
# Boundary-aware fine-tuning
# ---------------------------------------------------------------------------
def test_geometric_probe_flags_crossing_gaussians():
    model = make_model(num_gaussians=120, extent=4.0, scale=0.25, seed=8)
    probe = geometric_probe(voxel_size=0.5)
    flagged, quality, ratio = probe(model)
    assert 0.0 <= ratio <= 1.0
    assert len(flagged) == int(round(ratio * len(model)))
    assert np.isnan(quality)


def test_boundary_finetune_reduces_crossings_and_keeps_positions():
    model = make_model(num_gaussians=200, extent=4.0, scale=0.25, seed=9)
    result = boundary_aware_finetune(
        model, voxel_size=0.75, iterations=400, learning_rate=0.4, probe_every=100
    )
    assert result.cross_boundary_ratio[-1] <= result.cross_boundary_ratio[0]
    np.testing.assert_array_equal(result.model.positions, model.positions)
    # Scales never grow and never shrink below the trust region.
    assert np.all(result.model.scales <= model.scales + 1e-6)
    assert np.all(result.model.scales >= 0.29 * model.scales)


def test_boundary_finetune_validation(small_model):
    with pytest.raises(ValueError):
        boundary_aware_finetune(small_model, 1.0, iterations=-1)
    with pytest.raises(ValueError):
        boundary_aware_finetune(small_model, 1.0, beta=-0.1)
    with pytest.raises(ValueError):
        boundary_aware_finetune(small_model, 1.0, probe_every=0)


def test_boundary_finetune_zero_iterations_is_noop(small_model):
    result = boundary_aware_finetune(small_model, 1.0, iterations=0)
    np.testing.assert_allclose(result.model.scales, small_model.scales)
    assert len(result.iterations) == 1


def test_boundary_finetune_history_monotone_iterations(small_model):
    result = boundary_aware_finetune(small_model, 0.5, iterations=300, probe_every=100)
    assert result.iterations == sorted(result.iterations)
    assert len(result.error_gaussian_ratio) == len(result.iterations)
    assert len(result.penalty) == len(result.iterations)
