"""StreamingConfig.__post_init__ validation and error messages."""

import pytest

from repro.core.config import StreamingConfig


@pytest.mark.parametrize(
    "kwargs, message",
    [
        ({"voxel_size": 0.0}, "voxel_size must be positive, got 0.0"),
        ({"voxel_size": -2.0}, "voxel_size must be positive, got -2.0"),
        ({"tile_size": 0}, "tile_size must be positive, got 0"),
        ({"tile_size": -16}, "tile_size must be positive, got -16"),
        ({"ray_stride": 0}, "ray_stride must be positive, got 0"),
        ({"ray_step_fraction": 0.0}, "ray_step_fraction must be in (0, 1], got 0.0"),
        ({"ray_step_fraction": 1.5}, "ray_step_fraction must be in (0, 1], got 1.5"),
        ({"sh_degree": -1}, "sh_degree must be in [0, 3], got -1"),
        ({"sh_degree": 4}, "sh_degree must be in [0, 3], got 4"),
        ({"max_voxels_per_ray": 0}, "max_voxels_per_ray must be positive, got 0"),
        ({"frame_cache_size": -1}, "frame_cache_size must be non-negative, got -1"),
    ],
)
def test_invalid_fields_report_offending_value(kwargs, message):
    with pytest.raises(ValueError) as excinfo:
        StreamingConfig(**kwargs)
    assert str(excinfo.value) == message


def test_unknown_blend_kernel_lists_available():
    with pytest.raises(ValueError) as excinfo:
        StreamingConfig(blend_kernel="cuda")
    text = str(excinfo.value)
    assert "unknown blend_kernel 'cuda'" in text
    assert "reference" in text and "vectorized" in text


def test_with_options_revalidates():
    config = StreamingConfig()
    with pytest.raises(ValueError, match="voxel_size must be positive, got -1.0"):
        config.with_options(voxel_size=-1.0)


def test_valid_configuration_accepts_bounds():
    config = StreamingConfig(ray_step_fraction=1.0, sh_degree=0, frame_cache_size=0)
    assert config.ray_step_fraction == 1.0
    assert config.frame_cache_size == 0
