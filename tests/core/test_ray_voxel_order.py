"""Tests for ray/voxel traversal and the topological voxel ordering."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ray_voxel import traverse_ray, voxel_ordering_table
from repro.core.voxel_grid import VoxelGrid
from repro.core.voxel_order import (
    build_dependency_graph,
    order_violation_count,
    topological_voxel_order,
    voxel_depth_map,
)
from tests.conftest import make_camera, make_model


@pytest.fixture
def grid():
    model = make_model(num_gaussians=500, extent=8.0, seed=6)
    return VoxelGrid.build(model, voxel_size=2.0)


def test_traverse_ray_requires_direction(grid):
    with pytest.raises(ValueError):
        traverse_ray(grid, np.zeros(3), np.zeros(3))


def test_ray_missing_grid_returns_empty(grid):
    order = traverse_ray(grid, np.array([100.0, 100.0, 100.0]), np.array([0.0, 0.0, 1.0]))
    assert order == []


def test_traversal_is_front_to_back(grid):
    origin = np.array([10.0, 0.3, 0.2])
    direction = np.array([-1.0, 0.0, 0.0])
    order = traverse_ray(grid, origin, direction)
    assert len(order) > 0
    # Distances of visited voxel centres along the ray must be increasing.
    distances = [np.dot(grid.voxel_center(v) - origin, direction) for v in order]
    assert all(b >= a - grid.voxel_size for a, b in zip(distances, distances[1:]))


def test_traversal_visits_each_voxel_once(grid):
    origin = np.array([10.0, 0.0, 0.0])
    direction = np.array([-1.0, 0.05, 0.02])
    order = traverse_ray(grid, origin, direction)
    assert len(order) == len(set(order))


def test_traversal_include_empty_covers_more(grid):
    origin = np.array([10.0, 0.0, 0.0])
    direction = np.array([-1.0, 0.0, 0.0])
    non_empty = traverse_ray(grid, origin, direction, include_empty=False)
    all_cells = traverse_ray(grid, origin, direction, include_empty=True)
    assert len(all_cells) >= len(non_empty)


def test_max_voxels_bound(grid):
    origin = np.array([10.0, 0.0, 0.0])
    direction = np.array([-1.0, 0.0, 0.0])
    limited = traverse_ray(grid, origin, direction, max_voxels=2, include_empty=True)
    assert len(limited) <= 2


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 200))
def test_traversed_voxels_actually_intersect_ray(seed):
    model = make_model(num_gaussians=200, extent=6.0, seed=seed)
    grid = VoxelGrid.build(model, voxel_size=1.5)
    rng = np.random.default_rng(seed)
    origin = np.array([8.0, rng.uniform(-2, 2), rng.uniform(-2, 2)])
    direction = np.array([-1.0, rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3)])
    direction /= np.linalg.norm(direction)
    for voxel in traverse_ray(grid, origin, direction):
        lo, hi = grid.voxel_bounds(voxel)
        # Slab test: the ray must hit the voxel's AABB.
        inv = np.where(np.abs(direction) < 1e-12, np.inf, 1.0 / direction)
        t0, t1 = (lo - origin) * inv, (hi - origin) * inv
        t_near, t_far = np.minimum(t0, t1).max(), np.maximum(t0, t1).min()
        assert t_near <= t_far + 1e-6 and t_far >= 0


def test_ordering_table_contains_voxels(grid):
    camera = make_camera(width=32, height=32, distance=8.0)
    table = voxel_ordering_table(grid, camera, (0, 0, 16, 16), ray_stride=4)
    assert table.rays_sampled > 0
    assert table.total_entries == sum(len(order) for order in table.per_ray_orders)
    assert len(table.unique_voxels) > 0


def test_ordering_table_rejects_empty_bounds(grid):
    camera = make_camera()
    with pytest.raises(ValueError):
        voxel_ordering_table(grid, camera, (4, 4, 4, 8))


# ---------------------------------------------------------------------------
# Topological sorting
# ---------------------------------------------------------------------------
def test_build_dependency_graph_simple():
    adjacency = build_dependency_graph([[1, 2, 3], [2, 4]])
    assert adjacency[1] == {2}
    assert adjacency[2] == {3, 4}
    assert adjacency[3] == set()
    assert adjacency[4] == set()


def test_topological_order_respects_constraints():
    per_ray = [[1, 2, 3], [1, 4, 3], [2, 5]]
    result = topological_voxel_order(per_ray)
    assert result.is_valid_permutation
    assert result.cycles_broken == 0
    assert order_violation_count(result.order, per_ray) == 0


def test_topological_order_empty():
    result = topological_voxel_order([])
    assert result.order == []
    assert result.num_nodes == 0


def test_topological_order_breaks_cycles():
    per_ray = [[1, 2], [2, 1]]
    result = topological_voxel_order(per_ray, voxel_depths={1: 1.0, 2: 2.0})
    assert result.cycles_broken >= 1
    assert result.is_valid_permutation
    # The shallower voxel should be released first when breaking the tie.
    assert result.order[0] == 1


def test_depth_tiebreak_orders_front_to_back():
    # No constraints between 7 and 8; depth should decide.
    per_ray = [[7], [8]]
    result = topological_voxel_order(per_ray, voxel_depths={7: 5.0, 8: 1.0})
    assert result.order == [8, 7]


@settings(max_examples=40, deadline=None)
@given(
    num_nodes=st.integers(min_value=2, max_value=20),
    seed=st.integers(0, 1000),
)
def test_topological_sort_matches_networkx_on_random_dags(num_nodes, seed):
    """On random DAGs our Kahn sort must produce a valid topological order."""
    rng = np.random.default_rng(seed)
    # Random DAG: edges only from lower to higher node id.
    per_ray = []
    for _ in range(num_nodes):
        path_length = int(rng.integers(2, min(5, num_nodes + 1)))
        path = sorted(rng.choice(num_nodes, size=path_length, replace=False))
        per_ray.append(list(path))
    result = topological_voxel_order(per_ray)
    assert result.cycles_broken == 0
    assert order_violation_count(result.order, per_ray) == 0
    # Cross-check the graph is a DAG with networkx.
    graph = nx.DiGraph()
    for order in per_ray:
        graph.add_nodes_from(order)
        graph.add_edges_from(zip(order[:-1], order[1:]))
    assert nx.is_directed_acyclic_graph(graph)
    assert set(result.order) == set(graph.nodes)


def test_voxel_depth_map(grid):
    camera = make_camera(distance=8.0)
    depths = voxel_depth_map(grid, camera)
    assert len(depths) == grid.num_voxels
    assert all(np.isfinite(list(depths.values())))
