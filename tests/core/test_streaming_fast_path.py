"""Golden-equivalence suite for the vectorized streaming render path.

The acceptance bar of the streaming fast path (PR 5): across scenes,
compression variants and filter configurations, the batched per-voxel path
(``StreamingConfig.streaming_kernel="vectorized"``) must produce images
within 1e-9 of the voxel-at-a-time reference loop and *exactly* equal
workload statistics — fragment counts, hierarchical-filter reductions,
DRAM traffic, sort-list shapes and depth-order violation sets.  The same
bar applies to the batched building blocks (hierarchical filter, DDA
traversal, traffic accounting) against their serial counterparts, and to
parallel tile rendering against the serial tile loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import StreamingConfig
from repro.core.data_layout import DataLayout, LayoutTraffic
from repro.core.hierarchical_filter import FilterStats, HierarchicalFilter
from repro.core.pipeline import STREAMING_KERNELS, StreamingRenderer
from repro.core.ray_voxel import _tile_ray_pixels, traverse_ray, traverse_rays
from repro.core.voxel_grid import VoxelGrid
from repro.engine.bench import streaming_stats_equal
from repro.gaussians.tiles import TileGrid
from tests.conftest import make_camera, make_model

GOLDEN_ATOL = 1e-9

#: Two scene shapes: a mid-density cloud and a dense, near-opaque cloud
#: whose saturated tiles exercise the voxel-granular early termination.
SCENES = {
    "sparse": dict(num_gaussians=300, extent=5.0, scale=0.1, seed=3, opacity=0.8),
    "opaque": dict(num_gaussians=1200, extent=3.0, scale=0.25, seed=11, opacity=0.98),
}

#: Per-scene render geometry (the opaque scene is viewed close up through
#: small voxels so whole tiles saturate mid-stream).
SCENE_SETUP = {
    "sparse": dict(voxel_size=0.8, distance=5.0),
    "opaque": dict(voxel_size=0.6, distance=4.0),
}


def render_pair(scene: str, **config_options):
    model = make_model(**SCENES[scene])
    camera = make_camera(width=48, height=32, distance=SCENE_SETUP[scene]["distance"])
    base = StreamingConfig(
        voxel_size=SCENE_SETUP[scene]["voxel_size"], **config_options
    )
    outputs = {}
    for kernel in STREAMING_KERNELS:
        renderer = StreamingRenderer(
            model, base.with_options(streaming_kernel=kernel)
        )
        outputs[kernel] = renderer.render(camera)
    return outputs["reference"], outputs["vectorized"]


class TestStreamingGoldenEquivalence:
    @pytest.mark.parametrize("scene", sorted(SCENES))
    @pytest.mark.parametrize("use_vq", [False, True])
    @pytest.mark.parametrize("use_coarse_filter", [False, True])
    def test_vectorized_path_matches_reference(self, scene, use_vq, use_coarse_filter):
        reference, vectorized = render_pair(
            scene, use_vq=use_vq, use_coarse_filter=use_coarse_filter
        )
        np.testing.assert_allclose(
            vectorized.image, reference.image, atol=GOLDEN_ATOL
        )
        np.testing.assert_allclose(
            vectorized.alpha, reference.alpha, atol=GOLDEN_ATOL
        )
        equal, detail = streaming_stats_equal(reference.stats, vectorized.stats)
        assert equal, detail

    def test_early_termination_truncates_statistics_identically(self):
        """Saturated tiles stop streaming voxels at the same point."""
        reference, vectorized = render_pair("opaque", use_vq=False)
        # The opaque scene must actually terminate early somewhere, or the
        # scenario is untested.
        renderer = StreamingRenderer(
            make_model(**SCENES["opaque"]),
            StreamingConfig(voxel_size=SCENE_SETUP["opaque"]["voxel_size"], use_vq=False),
        )
        preparation = renderer.prepare_frame(
            make_camera(width=48, height=32, distance=SCENE_SETUP["opaque"]["distance"])
        )
        total_order_entries = sum(
            len(order.order) for order in preparation.tile_orders.values()
        )
        assert reference.stats.num_tile_voxel_pairs < total_order_entries
        assert (
            vectorized.stats.num_tile_voxel_pairs
            == reference.stats.num_tile_voxel_pairs
        )
        assert vectorized.stats.filter == reference.stats.filter
        assert vectorized.stats.traffic == reference.stats.traffic

    def test_streaming_kernel_is_validated(self):
        with pytest.raises(ValueError, match="streaming_kernel"):
            StreamingConfig(streaming_kernel="nope")

    def test_default_streaming_kernel_is_vectorized(self):
        assert StreamingConfig().streaming_kernel == "vectorized"
        assert set(STREAMING_KERNELS) == {"reference", "vectorized"}

    def test_reference_blend_kernel_routes_through_reference_path(self):
        """The blend-kernel escape hatch still covers streaming renders."""
        model = make_model(num_gaussians=120, extent=4.0, seed=2)
        camera = make_camera(width=32, height=32)
        renderer = StreamingRenderer(
            model,
            StreamingConfig(voxel_size=1.0, use_vq=False, blend_kernel="reference"),
        )
        output = renderer.render(camera)
        assert output.telemetry["streaming_kernel"] == "reference"
        vectorized = StreamingRenderer(
            model, StreamingConfig(voxel_size=1.0, use_vq=False)
        ).render(camera)
        assert vectorized.telemetry["streaming_kernel"] == "vectorized"
        np.testing.assert_allclose(
            vectorized.image, output.image, atol=GOLDEN_ATOL
        )


class TestBatchedHierarchicalFilter:
    @pytest.fixture
    def scene(self):
        model = make_model(num_gaussians=400, extent=6.0, seed=8)
        grid = VoxelGrid.build(model, voxel_size=1.2)
        camera = make_camera(width=64, height=48, distance=7.0)
        return model, grid, camera

    @pytest.mark.parametrize("use_coarse_filter", [False, True])
    def test_batch_matches_serial_per_voxel(self, scene, use_coarse_filter):
        model, grid, camera = scene
        hfilter = HierarchicalFilter(use_coarse_filter=use_coarse_filter)
        bounds = (16, 0, 48, 32)
        voxel_ids = list(range(grid.num_voxels))
        voxel_lists = [grid.gaussians_in_voxel(v) for v in voxel_ids]
        batch = hfilter.filter_voxel_batch(model, voxel_lists, camera, bounds)

        offset = 0
        for position, indices in enumerate(voxel_lists):
            serial = hfilter.filter_voxel(model, indices, camera, bounds)
            assert batch.voxel_stats(position) == serial.stats
            count = int(batch.survivor_counts[position])
            assert count == len(serial.indices)
            segment = slice(offset, offset + count)
            np.testing.assert_array_equal(batch.indices[segment], serial.indices)
            np.testing.assert_array_equal(
                batch.segment_ids[segment], np.full(count, position)
            )
            # Projection math is row-independent but BLAS kernels may pick
            # different instruction paths per batch size, so survivor
            # projections agree to the last few ulps, not bit-for-bit.
            np.testing.assert_allclose(
                batch.projected.depths[segment],
                serial.projected.depths,
                rtol=1e-12,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                batch.projected.means2d[segment],
                serial.projected.means2d,
                rtol=1e-12,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                batch.projected.conics[segment],
                serial.projected.conics,
                rtol=1e-12,
                atol=1e-12,
            )
            np.testing.assert_allclose(
                batch.projected.colors[segment],
                serial.projected.colors,
                rtol=1e-12,
                atol=1e-12,
            )
            offset += count

    def test_prefix_stats_matches_serial_accumulation(self, scene):
        model, grid, camera = scene
        hfilter = HierarchicalFilter()
        bounds = (0, 0, 32, 32)
        voxel_lists = [grid.gaussians_in_voxel(v) for v in range(grid.num_voxels)]
        batch = hfilter.filter_voxel_batch(model, voxel_lists, camera, bounds)
        accumulated = FilterStats()
        for position, indices in enumerate(voxel_lists):
            accumulated = accumulated.merge(
                hfilter.filter_voxel(model, indices, camera, bounds).stats
            )
            assert batch.prefix_stats(position + 1) == accumulated

    def test_empty_batch(self, scene):
        model, grid, camera = scene
        batch = HierarchicalFilter().filter_voxel_batch(
            model, [], camera, (0, 0, 16, 16)
        )
        assert batch.num_voxels == 0
        assert len(batch.indices) == 0
        assert batch.prefix_stats(0) == FilterStats()


#: Strategy for one random-but-valid FilterStats record.
filter_stats = st.builds(
    FilterStats,
    gaussians_in=st.integers(0, 10_000),
    coarse_tested=st.integers(0, 10_000),
    coarse_passed=st.integers(0, 10_000),
    fine_tested=st.integers(0, 10_000),
    fine_passed=st.integers(0, 10_000),
    coarse_macs=st.integers(0, 10_000_000),
    fine_macs=st.integers(0, 10_000_000),
)


class TestFilterStatsMergeProperties:
    @settings(max_examples=50, deadline=None)
    @given(a=filter_stats, b=filter_stats, c=filter_stats)
    def test_merge_is_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=50, deadline=None)
    @given(a=filter_stats, b=filter_stats)
    def test_merge_commutes(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=50, deadline=None)
    @given(a=filter_stats)
    def test_empty_is_identity(self, a):
        assert a.merge(FilterStats()) == a
        assert FilterStats().merge(a) == a


class TestBatchedTraversal:
    def test_batch_matches_scalar_per_ray(self):
        model = make_model(num_gaussians=500, extent=5.0, seed=9)
        grid = VoxelGrid.build(model, 0.7)
        camera = make_camera(width=64, height=48)
        tile_grid = TileGrid(64, 48, 16)
        for tile_id in range(tile_grid.num_tiles):
            px, py = _tile_ray_pixels(tile_grid.tile_pixel_bounds(tile_id), 4)
            origins, directions = camera.pixel_rays(px, py)
            batch = traverse_rays(grid, origins, directions)
            for ray in range(len(origins)):
                assert list(batch[ray]) == traverse_ray(
                    grid, origins[ray], directions[ray]
                )

    def test_max_voxels_bound_respected(self):
        model = make_model(num_gaussians=300, extent=5.0, seed=4)
        grid = VoxelGrid.build(model, 0.3)
        camera = make_camera(width=32, height=32)
        px, py = _tile_ray_pixels((0, 0, 32, 32), 8)
        origins, directions = camera.pixel_rays(px, py)
        short = traverse_rays(grid, origins, directions, max_voxels=3)
        full = traverse_rays(grid, origins, directions)
        for bounded, reference in zip(short, full):
            assert len(bounded) <= 3
            assert list(bounded) == list(reference[: len(bounded)])

    def test_zero_direction_raises(self):
        model = make_model(num_gaussians=50, seed=1)
        grid = VoxelGrid.build(model, 1.0)
        with pytest.raises(ValueError, match="non-zero"):
            traverse_rays(grid, np.zeros((1, 3)), np.zeros((1, 3)))


class TestBatchedTraffic:
    def test_batch_matches_per_voxel_merge(self):
        model = make_model(num_gaussians=400, extent=5.0, seed=6)
        grid = VoxelGrid.build(model, 1.0)
        layout = DataLayout(grid=grid, use_vq=False)
        rng = np.random.default_rng(0)
        voxel_ids = np.arange(grid.num_voxels, dtype=np.int64)
        passed = rng.integers(0, grid.voxel_counts + 1)
        merged = LayoutTraffic()
        for voxel_id, count in zip(voxel_ids, passed):
            merged = merged.merge(
                layout.voxel_stream_traffic(int(voxel_id), int(count))
            )
        assert layout.voxel_stream_traffic_batch(voxel_ids, passed) == merged

    def test_batch_validates_bounds(self):
        model = make_model(num_gaussians=100, seed=2)
        grid = VoxelGrid.build(model, 1.0)
        layout = DataLayout(grid=grid, use_vq=False)
        with pytest.raises(ValueError):
            layout.voxel_stream_traffic_batch(
                np.array([0]), np.array([int(grid.voxel_counts[0]) + 1])
            )
        assert layout.voxel_stream_traffic_batch(
            np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        ) == LayoutTraffic()


class TestParallelTileRendering:
    @pytest.mark.parametrize("streaming_kernel", STREAMING_KERNELS)
    def test_parallel_tiles_match_serial(self, streaming_kernel):
        model = make_model(num_gaussians=350, extent=5.0, scale=0.12, seed=5)
        camera = make_camera(width=64, height=48, distance=6.0)
        renderer = StreamingRenderer(
            model,
            StreamingConfig(
                voxel_size=1.0, use_vq=False, streaming_kernel=streaming_kernel
            ),
        )
        serial = renderer.render(camera)
        parallel = renderer.render(camera, tile_workers=4)
        # Tiles are independent: images are identical, not merely close.
        np.testing.assert_array_equal(parallel.image, serial.image)
        np.testing.assert_array_equal(parallel.alpha, serial.alpha)
        equal, detail = streaming_stats_equal(serial.stats, parallel.stats)
        assert equal, detail
        assert parallel.telemetry["tile_workers"] == 4
        assert serial.telemetry["tile_workers"] == 1

    def test_parallel_render_is_deterministic(self):
        model = make_model(num_gaussians=250, extent=4.0, seed=12)
        camera = make_camera(width=48, height=32)
        renderer = StreamingRenderer(
            model, StreamingConfig(voxel_size=1.0, use_vq=False)
        )
        first = renderer.render(camera, tile_workers=3)
        second = renderer.render(camera, tile_workers=3)
        np.testing.assert_array_equal(first.image, second.image)
        np.testing.assert_array_equal(
            first.stats.gaussian_blend_weight, second.stats.gaussian_blend_weight
        )
        assert first.stats.sort_list_lengths == second.stats.sort_list_lengths

    def test_tile_workers_validated(self):
        model = make_model(num_gaussians=50, seed=1)
        renderer = StreamingRenderer(model, StreamingConfig(voxel_size=1.0, use_vq=False))
        with pytest.raises(ValueError, match="tile_workers"):
            renderer.render(make_camera(width=32, height=32), tile_workers=0)
