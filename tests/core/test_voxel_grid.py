"""Tests for the voxel grid partition and cross-boundary detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.voxel_grid import VoxelGrid, contiguous_storage_order, cross_boundary_mask
from repro.gaussians.model import GaussianModel
from tests.conftest import make_model


@pytest.fixture
def grid_and_model():
    model = make_model(num_gaussians=400, extent=8.0, seed=4)
    grid = VoxelGrid.build(model, voxel_size=2.0)
    return grid, model


def test_build_validation(small_model):
    with pytest.raises(ValueError):
        VoxelGrid.build(small_model, voxel_size=0.0)
    with pytest.raises(ValueError):
        VoxelGrid.build(GaussianModel.empty(), voxel_size=1.0)


def test_every_gaussian_assigned_exactly_once(grid_and_model):
    grid, model = grid_and_model
    assert grid.voxel_counts.sum() == len(model)
    all_indices = np.concatenate(
        [grid.gaussians_in_voxel(v) for v in range(grid.num_voxels)]
    )
    assert sorted(all_indices.tolist()) == list(range(len(model)))


def test_gaussians_lie_inside_their_voxel(grid_and_model):
    grid, model = grid_and_model
    for voxel_id in range(grid.num_voxels):
        lo, hi = grid.voxel_bounds(voxel_id)
        members = grid.gaussians_in_voxel(voxel_id)
        positions = model.positions[members]
        assert np.all(positions >= lo - 1e-4)
        assert np.all(positions <= hi + 1e-4)


def test_renaming_is_dense(grid_and_model):
    grid, _ = grid_and_model
    renamed = sorted(grid.raw_to_renamed.values())
    assert renamed == list(range(grid.num_voxels))
    assert grid.num_voxels <= grid.num_raw_voxels
    assert 0 < grid.occupancy <= 1.0


def test_rename_of_empty_voxel_is_negative(grid_and_model):
    grid, _ = grid_and_model
    # Out-of-range raw ids always map to -1.
    assert grid.rename(grid.num_raw_voxels + 10) == -1
    # If the spatial grid has empty cells, they must map to -1 as well.
    occupied_raw = set(int(r) for r in grid.renamed_to_raw)
    empty_raw = next(
        (r for r in range(grid.num_raw_voxels) if r not in occupied_raw), None
    )
    if empty_raw is not None:
        assert grid.rename(empty_raw) == -1


def test_raw_id_of_point(grid_and_model):
    grid, model = grid_and_model
    for index in range(0, len(model), 50):
        raw = grid.raw_id_of_point(model.positions[index])
        assert grid.rename(raw) == grid.voxel_ids[index]
    assert grid.raw_id_of_point(np.array([1e6, 0, 0])) == -1


def test_voxel_center_and_coords_consistent(grid_and_model):
    grid, _ = grid_and_model
    for voxel_id in range(0, grid.num_voxels, 7):
        coords = grid.voxel_coords(voxel_id)
        center = grid.voxel_center(voxel_id)
        expected = grid.origin + (coords + 0.5) * grid.voxel_size
        np.testing.assert_allclose(center, expected)
        lo, hi = grid.voxel_bounds(voxel_id)
        assert np.all(lo < center) and np.all(center < hi)


def test_gaussians_in_voxel_bounds_checked(grid_and_model):
    grid, _ = grid_and_model
    with pytest.raises(IndexError):
        grid.gaussians_in_voxel(grid.num_voxels)


def test_histogram_and_mean(grid_and_model):
    grid, model = grid_and_model
    histogram = grid.voxel_sizes_histogram()
    assert sum(count * size for size, count in histogram.items()) == len(model)
    assert grid.mean_gaussians_per_voxel() == pytest.approx(
        len(model) / grid.num_voxels
    )


def test_contiguous_storage_order(grid_and_model):
    grid, model = grid_and_model
    lists = contiguous_storage_order(grid)
    assert len(lists) == grid.num_voxels
    assert sum(len(lst) for lst in lists) == len(model)


def test_cross_boundary_small_gaussians_rare():
    """Tiny Gaussians are only flagged when they hug a voxel boundary."""
    positions = np.array([[1.0, 1.0, 1.0], [1.999, 1.0, 1.0]])
    model = GaussianModel(
        positions=positions,
        scales=np.full((2, 3), 0.01),
        rotations=np.tile([1.0, 0, 0, 0], (2, 1)),
        opacities=np.full(2, 0.5),
        sh_dc=np.zeros((2, 3)),
    )
    mask = cross_boundary_mask(model, voxel_size=2.0, origin=np.zeros(3))
    assert not mask[0]     # centred in its voxel, far from every boundary
    assert mask[1]         # 0.001 away from the boundary at x = 2.0


def test_cross_boundary_detects_spanning_gaussian():
    model = GaussianModel(
        positions=np.array([[1.95, 1.0, 1.0], [1.0, 1.0, 1.0]]),
        scales=np.array([[0.2, 0.01, 0.01], [0.01, 0.01, 0.01]]),
        rotations=np.tile([1.0, 0, 0, 0], (2, 1)),
        opacities=np.full(2, 0.5),
        sh_dc=np.zeros((2, 3)),
    )
    mask = cross_boundary_mask(model, voxel_size=2.0, origin=np.zeros(3))
    assert mask[0]
    assert not mask[1]


def test_cross_boundary_empty_model():
    assert cross_boundary_mask(GaussianModel.empty(), 1.0).shape == (0,)


def test_cross_boundary_invalid_voxel_size(small_model):
    with pytest.raises(ValueError):
        cross_boundary_mask(small_model, 0.0)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), voxel_size=st.floats(0.5, 4.0))
def test_grid_partition_is_permutation(seed, voxel_size):
    model = make_model(num_gaussians=120, extent=6.0, seed=seed)
    grid = VoxelGrid.build(model, voxel_size=voxel_size)
    order = np.sort(grid.gaussian_order)
    np.testing.assert_array_equal(order, np.arange(len(model)))


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500))
def test_smaller_voxels_flag_more_crossings(seed):
    model = make_model(num_gaussians=150, extent=6.0, scale=0.1, seed=seed)
    coarse = cross_boundary_mask(model, voxel_size=3.0).mean()
    fine = cross_boundary_mask(model, voxel_size=0.75).mean()
    assert fine >= coarse
