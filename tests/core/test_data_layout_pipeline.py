"""Tests for the DRAM data layout and the streaming renderer."""

import numpy as np
import pytest

from repro.compression.codebook import CodebookSpec
from repro.compression.vq import VectorQuantizer
from repro.core.config import StreamingConfig
from repro.core.data_layout import (
    DataLayout,
    FIRST_HALF_BYTES,
    LayoutTraffic,
    PIXEL_WRITE_BYTES,
    RAW_SECOND_HALF_BYTES,
    render_model,
)
from repro.core.pipeline import StreamingRenderer, tile_centric_reference
from repro.core.voxel_grid import VoxelGrid
from repro.gaussians.metrics import psnr
from repro.gaussians.model import GaussianModel
from tests.conftest import make_camera, make_model


def small_quantizer(model):
    specs = (
        CodebookSpec(name="scale", num_entries=32, vector_dim=3),
        CodebookSpec(name="rotation", num_entries=32, vector_dim=4),
        CodebookSpec(name="dc", num_entries=32, vector_dim=3),
        CodebookSpec(name="sh", num_entries=16, vector_dim=45),
    )
    return VectorQuantizer(specs=specs, kmeans_iterations=5).fit(model)


# ---------------------------------------------------------------------------
# StreamingConfig
# ---------------------------------------------------------------------------
def test_config_validation():
    with pytest.raises(ValueError):
        StreamingConfig(voxel_size=0)
    with pytest.raises(ValueError):
        StreamingConfig(tile_size=-1)
    with pytest.raises(ValueError):
        StreamingConfig(ray_stride=0)
    with pytest.raises(ValueError):
        StreamingConfig(sh_degree=5)


def test_config_for_scene_category():
    assert StreamingConfig.for_scene_category("real").voxel_size == 2.0
    assert StreamingConfig.for_scene_category("synthetic").voxel_size == 0.4
    with pytest.raises(ValueError):
        StreamingConfig.for_scene_category("other")


def test_config_with_options():
    config = StreamingConfig().with_options(voxel_size=1.0, use_vq=False)
    assert config.voxel_size == 1.0
    assert not config.use_vq


# ---------------------------------------------------------------------------
# Data layout
# ---------------------------------------------------------------------------
def test_layout_constants_match_paper():
    assert FIRST_HALF_BYTES == 16
    assert RAW_SECOND_HALF_BYTES == 220
    assert PIXEL_WRITE_BYTES == 16


def test_layout_traffic_merge():
    a = LayoutTraffic(first_half_bytes=10, second_half_bytes=5, pixel_write_bytes=3)
    b = LayoutTraffic(first_half_bytes=1, metadata_bytes=2)
    merged = a.merge(b)
    assert merged.first_half_bytes == 11
    assert merged.total_bytes == 11 + 5 + 3 + 2
    assert merged.read_bytes == 11 + 5 + 2
    assert merged.write_bytes == 3


def test_layout_without_vq_uses_raw_bytes(small_model):
    grid = VoxelGrid.build(small_model, voxel_size=2.0)
    layout = DataLayout(grid=grid, quantizer=None, use_vq=False)
    assert layout.second_half_bytes_per_gaussian == RAW_SECOND_HALF_BYTES
    assert layout.second_half_traffic_reduction() == 0.0
    assert layout.codebook_sram_bytes() == 0
    assert render_model(small_model, layout) is small_model


def test_layout_with_vq_reduces_traffic(small_model):
    grid = VoxelGrid.build(small_model, voxel_size=2.0)
    quantizer = small_quantizer(small_model)
    layout = DataLayout(grid=grid, quantizer=quantizer, use_vq=True)
    assert layout.second_half_bytes_per_gaussian < RAW_SECOND_HALF_BYTES
    assert layout.second_half_traffic_reduction() > 0.8
    assert layout.codebook_sram_bytes() > 0
    rendered = render_model(small_model, layout)
    assert rendered is not small_model
    np.testing.assert_array_equal(rendered.positions, small_model.positions)


def test_layout_addresses_are_contiguous_and_disjoint(small_model):
    grid = VoxelGrid.build(small_model, voxel_size=2.0)
    layout = DataLayout(grid=grid, quantizer=None, use_vq=False)
    previous_end = 0
    for voxel_id in range(grid.num_voxels):
        start, size = layout.voxel_addresses[voxel_id]
        assert start == previous_end
        assert size > 0
        previous_end = start + size
    assert layout.total_model_bytes() == previous_end


def test_voxel_stream_traffic_bounds(small_model):
    grid = VoxelGrid.build(small_model, voxel_size=2.0)
    layout = DataLayout(grid=grid, quantizer=None, use_vq=False)
    count = int(grid.voxel_counts[0])
    traffic = layout.voxel_stream_traffic(0, coarse_passed=count)
    assert traffic.first_half_bytes >= count * FIRST_HALF_BYTES
    assert traffic.second_half_bytes >= count * RAW_SECOND_HALF_BYTES
    with pytest.raises(ValueError):
        layout.voxel_stream_traffic(0, coarse_passed=count + 1)


def test_pixel_and_metadata_traffic():
    assert DataLayout.pixel_write_traffic(10).pixel_write_bytes == 160
    assert DataLayout.ordering_metadata_traffic(7).metadata_bytes == 28


# ---------------------------------------------------------------------------
# Streaming renderer
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def streaming_setup():
    model = make_model(num_gaussians=350, extent=6.0, scale=0.1, seed=15)
    camera = make_camera(width=64, height=48, distance=7.0)
    config = StreamingConfig(voxel_size=1.5, use_vq=False)
    renderer = StreamingRenderer(model, config)
    output = renderer.render(camera)
    return model, camera, config, renderer, output


def test_streaming_renderer_rejects_empty_model():
    with pytest.raises(ValueError):
        StreamingRenderer(GaussianModel.empty(), StreamingConfig())


def test_streaming_output_shape(streaming_setup):
    _, camera, _, _, output = streaming_setup
    assert output.image.shape == (camera.height, camera.width, 3)
    assert output.alpha.shape == (camera.height, camera.width)
    assert output.width == camera.width and output.height == camera.height
    assert np.all(output.image >= 0) and np.all(output.image <= 1)


def test_streaming_matches_tile_centric_reference(streaming_setup):
    """The memory-centric renderer approximates the tile-centric image."""
    model, camera, config, _, output = streaming_setup
    reference = tile_centric_reference(model, camera, config)
    assert psnr(reference.image, output.image) > 25.0


def test_streaming_stats_consistency(streaming_setup):
    model, camera, config, renderer, output = streaming_setup
    stats = output.stats
    assert stats.num_tiles == ((camera.width + 15) // 16) * ((camera.height + 15) // 16)
    assert stats.num_tile_voxel_pairs > 0
    assert stats.gaussians_streamed >= stats.filter.fine_passed
    assert stats.filter.gaussians_in == stats.gaussians_streamed
    assert 0.0 <= stats.filtering_reduction <= 1.0
    assert stats.traffic.pixel_write_bytes == camera.num_pixels * PIXEL_WRITE_BYTES
    assert stats.traffic.total_bytes > 0
    assert stats.mean_voxels_per_tile > 0
    assert 0.0 <= stats.error_gaussian_ratio <= 1.0
    assert stats.rendered_gaussian_count <= len(model)


def test_streaming_error_tracking(streaming_setup):
    _, _, _, _, output = streaming_setup
    stats = output.stats
    flagged = stats.error_gaussian_indices()
    top = stats.top_violating_gaussians(0.9)
    violators = set(np.flatnonzero(stats.gaussian_violation_weight > 0.0))
    assert set(top) <= violators
    assert len(flagged) <= stats.rendered_gaussian_count
    with pytest.raises(ValueError):
        stats.top_violating_gaussians(0.0)


def test_streaming_with_vq_close_to_without():
    model = make_model(num_gaussians=250, extent=5.0, scale=0.1, seed=16)
    camera = make_camera(width=48, height=32, distance=6.0)
    quantizer = small_quantizer(model)
    base = StreamingRenderer(model, StreamingConfig(voxel_size=1.5, use_vq=False)).render(camera)
    vq = StreamingRenderer(
        model, StreamingConfig(voxel_size=1.5, use_vq=True), quantizer=quantizer
    ).render(camera)
    assert psnr(base.image, vq.image) > 20.0
    # VQ reduces the second-half DRAM traffic.
    assert vq.stats.traffic.second_half_bytes < base.stats.traffic.second_half_bytes


def test_disabling_coarse_filter_same_image():
    model = make_model(num_gaussians=200, extent=5.0, scale=0.1, seed=17)
    camera = make_camera(width=48, height=32, distance=6.0)
    with_cgf = StreamingRenderer(model, StreamingConfig(voxel_size=1.5, use_vq=False))
    without_cgf = StreamingRenderer(
        model, StreamingConfig(voxel_size=1.5, use_vq=False, use_coarse_filter=False)
    )
    image_a = with_cgf.render(camera).image
    image_b = without_cgf.render(camera).image
    np.testing.assert_allclose(image_a, image_b, atol=1e-9)
