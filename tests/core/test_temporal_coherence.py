"""Golden-parity suite for the temporal-coherence carry path.

The acceptance bar of the trajectory fast path (PR 8): across scenes and
camera paths, rendering with ``StreamingConfig.temporal_mode="carry"``
must produce images within 1e-9 of ``temporal_mode="off"`` and *exactly*
equal workload statistics, frame by frame.  Teleports (pose jumps beyond
the staleness thresholds) must fall back to cold frames, configurations
the carry path cannot serve (reference kernels, parallel tiles) must
render cold and say why in the telemetry, and unknown modes must be
rejected at construction time.
"""

import numpy as np
import pytest

from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.engine.bench import streaming_stats_equal
from repro.gaussians.camera import Camera
from tests.conftest import make_model

GOLDEN_ATOL = 1e-9

SCENES = {
    "sparse": dict(num_gaussians=300, extent=5.0, scale=0.1, seed=3, opacity=0.8),
    "opaque": dict(num_gaussians=900, extent=3.0, scale=0.25, seed=11, opacity=0.98),
}

SCENE_SETUP = {
    "sparse": dict(voxel_size=0.8, distance=5.0),
    "opaque": dict(voxel_size=0.6, distance=4.0),
}


def _camera_at(angle_deg: float, distance: float, height: float = 0.6) -> Camera:
    angle = np.deg2rad(angle_deg)
    return Camera.from_lookat(
        eye=(distance * np.cos(angle), distance * np.sin(angle), height),
        target=(0.0, 0.0, 0.0),
        width=48,
        height=32,
        fov_deg=60.0,
    )


def _trajectory(path: str, distance: float):
    """Small deterministic camera paths kept below the teleport thresholds."""
    if path == "orbit":
        return [_camera_at(4.0 * i, distance) for i in range(5)]
    if path == "dolly":
        return [_camera_at(0.0, distance * (1.0 - 0.02 * i)) for i in range(5)]
    if path == "repeat":
        return [_camera_at(30.0, distance)] * 4
    raise AssertionError(path)


def _render_sequences(scene: str, cameras, **carry_options):
    model = make_model(**SCENES[scene])
    base = StreamingConfig(
        voxel_size=SCENE_SETUP[scene]["voxel_size"], frame_cache_size=0
    )
    off = StreamingRenderer(model, base.with_options(temporal_mode="off"))
    carry = StreamingRenderer(
        model, base.with_options(temporal_mode="carry", **carry_options)
    )
    return [(off.render(c), carry.render(c)) for c in cameras], carry


def _assert_frames_equal(pairs):
    for index, (cold, warm) in enumerate(pairs):
        np.testing.assert_allclose(
            warm.image, cold.image, atol=GOLDEN_ATOL,
            err_msg=f"frame {index} image diverged",
        )
        np.testing.assert_allclose(
            warm.alpha, cold.alpha, atol=GOLDEN_ATOL,
            err_msg=f"frame {index} alpha diverged",
        )
        equal, detail = streaming_stats_equal(cold.stats, warm.stats)
        assert equal, f"frame {index}: {detail}"


class TestCarryGoldenParity:
    @pytest.mark.parametrize("scene", sorted(SCENES))
    @pytest.mark.parametrize("path", ["orbit", "dolly", "repeat"])
    def test_carry_matches_off_frame_by_frame(self, scene, path):
        cameras = _trajectory(path, SCENE_SETUP[scene]["distance"])
        pairs, _ = _render_sequences(scene, cameras)
        _assert_frames_equal(pairs)

    def test_warm_frames_report_carry_telemetry(self):
        cameras = _trajectory("orbit", SCENE_SETUP["sparse"]["distance"])
        pairs, carry = _render_sequences("sparse", cameras)
        first = pairs[0][1].telemetry
        assert first["temporal_mode"] == "carry"
        assert first["cold_frame"] is True
        for _, warm in pairs[1:]:
            telemetry = warm.telemetry
            assert telemetry["cold_frame"] is False
            assert {"carried_voxels", "revalidated", "coherence_hit_rate"} <= set(
                telemetry
            )
        snapshot = carry.temporal.snapshot()
        assert snapshot["frames"] == len(cameras)
        assert snapshot["cold_frames"] == 1

    def test_repeated_pose_carries_gathers_and_orders(self):
        """Identical consecutive poses replay the cached work exactly."""
        cameras = _trajectory("repeat", SCENE_SETUP["sparse"]["distance"])
        pairs, carry = _render_sequences("sparse", cameras)
        _assert_frames_equal(pairs)
        snapshot = carry.temporal.snapshot()
        assert snapshot["carried_voxels"] > 0
        assert snapshot["orders_carried"] > 0
        assert snapshot["coherence_hit_rate"] > 0.5


class TestTeleportFallback:
    def test_teleport_renders_cold_and_stays_exact(self):
        """90-degree pose jumps drop the carried state every frame."""
        distance = SCENE_SETUP["sparse"]["distance"]
        cameras = [_camera_at(90.0 * i, distance) for i in range(4)]
        pairs, carry = _render_sequences("sparse", cameras)
        _assert_frames_equal(pairs)
        snapshot = carry.temporal.snapshot()
        assert snapshot["cold_frames"] == len(cameras)
        assert snapshot["teleports"] == len(cameras) - 1
        assert snapshot["carried_voxels"] == 0


class TestConfigurationFallbacks:
    def test_reference_kernel_falls_back_with_reason(self):
        cameras = _trajectory("orbit", SCENE_SETUP["sparse"]["distance"])[:2]
        pairs, _ = _render_sequences(
            "sparse", cameras, blend_kernel="reference", streaming_kernel="reference"
        )
        for _, warm in pairs:
            assert warm.telemetry["temporal_mode"] == "off"
            assert warm.telemetry["temporal_fallback"] == "reference-kernel"

    def test_parallel_tiles_fall_back_with_reason(self):
        model = make_model(**SCENES["sparse"])
        config = StreamingConfig(
            voxel_size=SCENE_SETUP["sparse"]["voxel_size"],
            temporal_mode="carry",
            frame_cache_size=0,
        )
        renderer = StreamingRenderer(model, config)
        camera = _camera_at(0.0, SCENE_SETUP["sparse"]["distance"])
        output = renderer.render(camera, tile_workers=2, tile_mode="thread")
        assert output.telemetry["temporal_mode"] == "off"
        assert output.telemetry["temporal_fallback"] == "tile-workers"

    def test_unknown_temporal_mode_is_rejected(self):
        with pytest.raises(ValueError, match="temporal_mode"):
            StreamingConfig(voxel_size=1.0, temporal_mode="bogus")
