"""Tests for the two-phase hierarchical filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hierarchical_filter import (
    COARSE_FILTER_MACS,
    FINE_FILTER_MACS,
    FilterStats,
    HierarchicalFilter,
)
from repro.core.voxel_grid import VoxelGrid
from repro.gaussians.projection import project_gaussians
from tests.conftest import make_camera, make_model


@pytest.fixture
def scene():
    model = make_model(num_gaussians=400, extent=6.0, seed=8)
    grid = VoxelGrid.build(model, voxel_size=1.5)
    camera = make_camera(width=64, height=48, distance=7.0)
    return model, grid, camera


def test_mac_constants_match_paper():
    assert COARSE_FILTER_MACS == 55
    assert FINE_FILTER_MACS == 427


def test_filter_stats_merge():
    a = FilterStats(gaussians_in=10, coarse_tested=10, coarse_passed=5, fine_tested=5, fine_passed=2)
    b = FilterStats(gaussians_in=4, coarse_tested=4, coarse_passed=4, fine_tested=4, fine_passed=4)
    merged = a.merge(b)
    assert merged.gaussians_in == 14
    assert merged.fine_passed == 6
    assert 0 <= merged.coarse_reject_rate <= 1
    assert 0 <= merged.overall_reduction <= 1


def test_filter_stats_empty_rates():
    empty = FilterStats()
    assert empty.coarse_reject_rate == 0.0
    assert empty.overall_reduction == 0.0
    assert empty.total_macs == 0


def test_filter_empty_voxel(scene):
    model, grid, camera = scene
    result = HierarchicalFilter().filter_voxel(model, np.array([], dtype=np.int64), camera, (0, 0, 16, 16))
    assert len(result.indices) == 0
    assert result.stats.gaussians_in == 0


def test_filter_counts_consistent(scene):
    model, grid, camera = scene
    hfilter = HierarchicalFilter()
    tile = (16, 16, 32, 32)
    total = FilterStats()
    for voxel_id in range(grid.num_voxels):
        result = hfilter.filter_voxel(model, grid.gaussians_in_voxel(voxel_id), camera, tile)
        stats = result.stats
        assert stats.coarse_passed <= stats.coarse_tested
        assert stats.fine_passed <= stats.fine_tested
        assert stats.fine_tested == stats.coarse_passed
        assert len(result.indices) == stats.fine_passed
        total = total.merge(stats)
    assert total.gaussians_in == len(model)
    assert total.coarse_macs == COARSE_FILTER_MACS * total.coarse_tested
    assert total.fine_macs == FINE_FILTER_MACS * total.fine_tested


def test_survivors_overlap_tile(scene):
    """Every survivor's precise footprint must overlap the tile rectangle."""
    model, grid, camera = scene
    hfilter = HierarchicalFilter()
    tile = (0, 0, 32, 24)
    x0, y0, x1, y1 = tile
    for voxel_id in range(grid.num_voxels):
        result = hfilter.filter_voxel(model, grid.gaussians_in_voxel(voxel_id), camera, tile)
        p = result.projected
        for i in range(len(result.indices)):
            assert p.means2d[i, 0] + p.radii[i] >= x0
            assert p.means2d[i, 0] - p.radii[i] < x1
            assert p.means2d[i, 1] + p.radii[i] >= y0
            assert p.means2d[i, 1] - p.radii[i] < y1


def test_disabling_coarse_filter_gives_same_survivors(scene):
    """The coarse filter is a pure optimisation: survivors must not change."""
    model, grid, camera = scene
    with_cgf = HierarchicalFilter(use_coarse_filter=True)
    without_cgf = HierarchicalFilter(use_coarse_filter=False)
    tile = (16, 0, 48, 32)
    for voxel_id in range(grid.num_voxels):
        indices = grid.gaussians_in_voxel(voxel_id)
        a = with_cgf.filter_voxel(model, indices, camera, tile)
        b = without_cgf.filter_voxel(model, indices, camera, tile)
        np.testing.assert_array_equal(a.indices, b.indices)
    # Without the coarse filter no coarse MACs are spent but more fine MACs are.
    stats_a = with_cgf.filter_voxel(model, grid.gaussians_in_voxel(0), camera, tile).stats
    stats_b = without_cgf.filter_voxel(model, grid.gaussians_in_voxel(0), camera, tile).stats
    assert stats_b.coarse_macs == 0
    assert stats_b.fine_macs >= stats_a.fine_macs


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 300))
def test_coarse_filter_soundness(seed):
    """Property: the coarse filter never rejects a Gaussian the fine filter accepts."""
    model = make_model(num_gaussians=120, extent=5.0, scale=0.12, seed=seed)
    grid = VoxelGrid.build(model, voxel_size=1.25)
    camera = make_camera(width=48, height=48, distance=6.0)
    hfilter = HierarchicalFilter()
    rng = np.random.default_rng(seed)
    x0 = int(rng.integers(0, 32))
    y0 = int(rng.integers(0, 32))
    tile = (x0, y0, x0 + 16, y0 + 16)
    for voxel_id in range(grid.num_voxels):
        assert hfilter.coarse_filter_soundness_check(
            model, grid.gaussians_in_voxel(voxel_id), camera, tile
        )
