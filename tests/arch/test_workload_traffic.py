"""Tests for the full-scale workload model and traffic models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.traffic import (
    StreamingTraffic,
    TileCentricTraffic,
    streaming_traffic,
    tile_centric_traffic,
)
from repro.arch.workload import FullScaleWorkload, build_workload
from repro.core.config import StreamingConfig
from repro.core.pipeline import StreamingRenderer
from repro.gaussians.rasterizer import TileRasterizer
from repro.scenes.registry import SCENE_REGISTRY
from tests.conftest import make_camera, make_model


def make_workload(**overrides) -> FullScaleWorkload:
    """A hand-written workload in the truck-scene ballpark."""
    values = dict(
        scene="synthetic-test",
        num_gaussians=1_000_000,
        width=960,
        height=540,
        num_voxels=800,
        voxel_size=2.0,
        visible_fraction=0.8,
        mean_depth=15.0,
        focal_px=800.0,
        blend_efficiency=0.1,
        voxels_per_ray=10.0,
        mean_radius_px=4.0,
        group_size=32,
    )
    values.update(overrides)
    return FullScaleWorkload(**values)


def test_workload_basic_counts():
    w = make_workload()
    assert w.num_pixels == 960 * 540
    assert w.num_tiles == 60 * 34
    assert w.num_groups == 30 * 17
    assert w.visible_gaussians == pytest.approx(800_000)
    assert w.duplication_factor > 1.0
    assert w.num_pairs > w.visible_gaussians
    assert w.blended_fragments > 0


def test_workload_streaming_quantities_consistent():
    w = make_workload()
    assert w.gaussians_per_voxel == pytest.approx(1250)
    assert w.voxel_instances == pytest.approx(w.num_groups * w.voxels_per_group)
    assert w.gaussians_streamed == pytest.approx(w.voxel_instances * w.gaussians_per_voxel)
    assert 0.0 < w.coarse_pass_rate <= 1.0
    assert 0.0 < w.fine_pass_rate_given_coarse <= 1.0
    assert w.survivors <= w.coarse_passed <= w.gaussians_streamed
    assert 0.0 <= w.filtering_reduction <= 1.0
    assert w.survivors_per_voxel >= 0.0


def test_second_half_fetch_bounded_by_visible():
    w = make_workload()
    with_cgf = w.second_half_fetched(use_coarse_filter=True)
    without_cgf = w.second_half_fetched(use_coarse_filter=False)
    assert with_cgf <= without_cgf
    assert without_cgf == pytest.approx(w.first_half_fetched)


def test_with_group_size_rederives_quantities():
    w = make_workload()
    larger = w.with_group_size(64)
    assert larger.num_groups < w.num_groups
    assert larger.groups_per_voxel < w.groups_per_voxel
    assert larger.coarse_pass_rate >= w.coarse_pass_rate
    with pytest.raises(ValueError):
        w.with_group_size(0)


def test_smaller_groups_filter_more():
    w = make_workload()
    small = w.with_group_size(16)
    large = w.with_group_size(128)
    assert small.filtering_reduction >= large.filtering_reduction


# ---------------------------------------------------------------------------
# Tile-centric traffic (Fig. 2 / Fig. 4)
# ---------------------------------------------------------------------------
def test_tile_centric_traffic_structure():
    w = make_workload()
    traffic = tile_centric_traffic(w)
    assert isinstance(traffic, TileCentricTraffic)
    assert traffic.total_bytes == pytest.approx(
        traffic.projection_bytes + traffic.sorting_bytes + traffic.rendering_bytes
    )
    fractions = traffic.fractions()
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert 0 < traffic.intermediate_bytes < traffic.total_bytes
    assert traffic.required_bandwidth(90.0) == pytest.approx(traffic.total_bytes * 90.0)


def test_sorting_dominates_tile_centric_traffic():
    """Sec. II-B: projection + sorting account for ~90 % of the traffic."""
    w = make_workload()
    fractions = tile_centric_traffic(w).fractions()
    assert fractions["projection"] + fractions["sorting"] > 0.8
    assert fractions["rendering"] < 0.2


def test_intermediate_share_is_large():
    w = make_workload()
    traffic = tile_centric_traffic(w)
    assert traffic.intermediate_bytes / traffic.total_bytes > 0.6


# ---------------------------------------------------------------------------
# Streaming traffic
# ---------------------------------------------------------------------------
def test_streaming_traffic_much_lower_than_tile_centric():
    w = make_workload()
    tile = tile_centric_traffic(w).total_bytes
    streaming = streaming_traffic(w).total_bytes
    assert streaming < 0.25 * tile


def test_streaming_traffic_has_no_intermediate():
    w = make_workload()
    traffic = streaming_traffic(w)
    assert isinstance(traffic, StreamingTraffic)
    assert traffic.intermediate_bytes == 0.0
    assert set(traffic.breakdown()) == {
        "first_half",
        "second_half",
        "ordering_metadata",
        "pixel_writes",
    }


def test_vq_reduces_streaming_traffic():
    w = make_workload()
    with_vq = streaming_traffic(w, use_vq=True).total_bytes
    without_vq = streaming_traffic(w, use_vq=False).total_bytes
    assert with_vq < without_vq


def test_coarse_filter_reduces_streaming_traffic():
    w = make_workload()
    with_cgf = streaming_traffic(w, use_coarse_filter=True).second_half_bytes
    without_cgf = streaming_traffic(w, use_coarse_filter=False).second_half_bytes
    assert with_cgf <= without_cgf


@settings(max_examples=20, deadline=None)
@given(
    num_gaussians=st.integers(100_000, 4_000_000),
    radius=st.floats(1.0, 12.0),
)
def test_traffic_monotone_in_scene_size(num_gaussians, radius):
    small = make_workload(num_gaussians=num_gaussians, mean_radius_px=radius)
    big = make_workload(num_gaussians=num_gaussians * 2, mean_radius_px=radius)
    assert tile_centric_traffic(big).total_bytes > tile_centric_traffic(small).total_bytes
    assert streaming_traffic(big).total_bytes > streaming_traffic(small).total_bytes


# ---------------------------------------------------------------------------
# build_workload from measured statistics
# ---------------------------------------------------------------------------
def test_build_workload_from_simulated_scene():
    model = make_model(num_gaussians=400, extent=8.0, scale=0.1, seed=20)
    camera = make_camera(width=64, height=48, distance=8.0)
    tile_output = TileRasterizer().render(model, camera)
    renderer = StreamingRenderer(model, StreamingConfig(voxel_size=2.0, use_vq=False))
    streaming_output = renderer.render(camera)
    descriptor = SCENE_REGISTRY["train"]
    workload = build_workload(
        descriptor=descriptor,
        tile_stats=tile_output.stats,
        projected=tile_output.projected,
        streaming_stats=streaming_output.stats,
        num_voxels=renderer.grid.num_voxels,
        sim_width=camera.width,
        sim_focal=camera.fx,
    )
    assert workload.num_gaussians == descriptor.full_num_gaussians
    assert workload.width, workload.height == descriptor.full_resolution
    assert 0 < workload.visible_fraction <= 1.0
    assert workload.mean_radius_px > 0
    assert workload.voxels_per_ray > 0
    assert workload.blend_efficiency > 0
