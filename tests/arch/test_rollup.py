"""Per-class fleet cost rollup and the new accelerator sizing knobs."""

import pytest

from repro.arch.accelerator import AcceleratorConfig, StreamingGSAccelerator
from repro.arch.rollup import (
    BYTES_PER_DRAM_CHANNEL,
    ClassCost,
    class_cost,
    class_cost_from_metrics,
    fleet_rollup,
)
from repro.arch.workload import FullScaleWorkload


def make_workload(**overrides) -> FullScaleWorkload:
    values = dict(
        scene="synthetic-test",
        num_gaussians=1_000_000,
        width=960,
        height=540,
        num_voxels=800,
        voxel_size=2.0,
        visible_fraction=0.8,
        mean_depth=15.0,
        focal_px=800.0,
        blend_efficiency=0.1,
        voxels_per_ray=10.0,
        mean_radius_px=4.0,
        group_size=32,
    )
    values.update(overrides)
    return FullScaleWorkload(**values)


class TestConfigKnobs:
    def test_default_knobs_reproduce_baseline_exactly(self):
        workload = make_workload()
        baseline = StreamingGSAccelerator().evaluate(workload)
        explicit = StreamingGSAccelerator(
            AcceleratorConfig(sram_scale=1.0, dram_channels=4)
        ).evaluate(workload)
        assert explicit.frame_time_s == baseline.frame_time_s
        assert explicit.energy_per_frame_j == baseline.energy_per_frame_j
        assert explicit.dram_bytes == baseline.dram_bytes

    def test_fewer_channels_scale_bandwidth_linearly(self):
        one = StreamingGSAccelerator(AcceleratorConfig(dram_channels=1))
        four = StreamingGSAccelerator(AcceleratorConfig(dram_channels=4))
        assert one.dram.peak_bandwidth_bytes == pytest.approx(
            four.dram.peak_bandwidth_bytes / 4
        )
        workload = make_workload()
        assert one.evaluate(workload).frame_time_s >= four.evaluate(workload).frame_time_s

    def test_small_codebook_buffer_adds_raw_second_half_traffic(self):
        workload = make_workload()
        full = StreamingGSAccelerator(AcceleratorConfig())
        small = StreamingGSAccelerator(AcceleratorConfig(sram_scale=0.5))
        assert small.traffic(workload).total_bytes > full.traffic(workload).total_bytes
        assert small.evaluate(workload).dram_bytes > full.evaluate(workload).dram_bytes

    def test_sram_scale_shrinks_area(self):
        small = StreamingGSAccelerator(AcceleratorConfig(sram_scale=0.5))
        full = StreamingGSAccelerator(AcceleratorConfig())
        assert small.area_mm2() < full.area_mm2()

    def test_sram_scale_without_vq_changes_no_traffic(self):
        workload = make_workload()
        small = StreamingGSAccelerator(AcceleratorConfig(sram_scale=0.5, use_vq=False))
        full = StreamingGSAccelerator(AcceleratorConfig(use_vq=False))
        assert small.traffic(workload).total_bytes == full.traffic(workload).total_bytes

    def test_explicit_buffers_are_not_rescaled(self):
        buffers = StreamingGSAccelerator().buffers
        accel = StreamingGSAccelerator(
            AcceleratorConfig(sram_scale=0.25), buffers=buffers
        )
        assert accel.buffers is buffers

    @pytest.mark.parametrize(
        "bad",
        [
            dict(sram_scale=0.0),
            dict(sram_scale=-0.5),
            dict(dram_channels=0),
            dict(dram_channels=-1),
            dict(dram_channels=2.5),
        ],
    )
    def test_invalid_knobs_rejected(self, bad):
        with pytest.raises(ValueError):
            AcceleratorConfig(**bad)

    def test_integral_float_channels_accepted(self):
        # Spec canonicalization normalizes numerics to float on the wire.
        assert AcceleratorConfig(dram_channels=2.0).dram_channels == 2.0


class TestClassCost:
    def cost(self, **overrides):
        values = dict(
            name="preview",
            frames=900.0,
            window_s=10.0,
            frame_time_s=0.002,
            energy_per_frame_j=0.01,
            dram_bytes_per_frame=30e6,
        )
        values.update(overrides)
        return ClassCost(**values)

    def test_rates_derive_from_the_window(self):
        cost = self.cost()
        assert cost.offered_fps == pytest.approx(90.0)
        assert cost.required_bandwidth_bytes == pytest.approx(30e6 * 90.0)
        assert cost.mean_power_w == pytest.approx(900.0 * 0.01 / 10.0)
        assert cost.devices_required == pytest.approx(900.0 * 0.002 / 10.0)

    def test_from_report_matches_direct_construction(self):
        report = StreamingGSAccelerator().evaluate(make_workload())
        cost = class_cost("c", report, frames=10.0, window_s=2.0)
        assert cost.frame_time_s == report.frame_time_s
        assert cost.dram_bytes_per_frame == report.dram_bytes

    def test_from_metrics_round_trips_units(self):
        cost = self.cost()
        rebuilt = class_cost_from_metrics(
            "preview",
            {
                "frame_time_ms": cost.frame_time_s * 1e3,
                "energy_per_frame_mj": cost.energy_per_frame_j * 1e3,
                "dram_mb_per_frame": cost.dram_bytes_per_frame / 1e6,
            },
            frames=cost.frames,
            window_s=cost.window_s,
        )
        assert rebuilt.frame_time_s == pytest.approx(cost.frame_time_s)
        assert rebuilt.energy_per_frame_j == pytest.approx(cost.energy_per_frame_j)
        assert rebuilt.dram_bytes_per_frame == pytest.approx(cost.dram_bytes_per_frame)

    @pytest.mark.parametrize("bad", [dict(frames=-1.0), dict(window_s=0.0)])
    def test_invalid_cost_rejected(self, bad):
        with pytest.raises(ValueError):
            self.cost(**bad)


class TestFleetRollup:
    def test_totals_are_sums_over_classes(self):
        a = ClassCost("a", frames=100.0, window_s=10.0, frame_time_s=0.001,
                      energy_per_frame_j=0.005, dram_bytes_per_frame=10e6)
        b = ClassCost("b", frames=50.0, window_s=10.0, frame_time_s=0.004,
                      energy_per_frame_j=0.02, dram_bytes_per_frame=40e6)
        fleet = fleet_rollup([b, a])
        assert [c.name for c in fleet.classes] == ["a", "b"]
        assert fleet.frames == pytest.approx(150.0)
        assert fleet.offered_fps == pytest.approx(15.0)
        assert fleet.required_bandwidth_bytes == pytest.approx(
            a.required_bandwidth_bytes + b.required_bandwidth_bytes
        )
        assert fleet.devices_required == pytest.approx(
            a.devices_required + b.devices_required
        )
        assert fleet.dram_channels_required == pytest.approx(
            fleet.required_bandwidth_bytes / BYTES_PER_DRAM_CHANNEL
        )

    def test_as_dict_is_json_native(self):
        import json

        fleet = fleet_rollup(
            [ClassCost("a", frames=1.0, window_s=1.0, frame_time_s=0.001,
                       energy_per_frame_j=0.001, dram_bytes_per_frame=1e6)]
        )
        payload = fleet.as_dict()
        json.dumps(payload)
        assert payload["classes"][0]["name"] == "a"

    def test_empty_rollup_is_zero(self):
        fleet = fleet_rollup([])
        assert fleet.frames == 0.0
        assert fleet.required_bandwidth_bytes == 0.0
