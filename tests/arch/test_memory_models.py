"""Tests for the DRAM, SRAM and area models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.area import GSCORE_AREA_MM2, AreaModel
from repro.arch.dram import DRAMModel, LPDDR3_4CH, ORIN_NX_DRAM
from repro.arch.sram import SRAMModel, default_buffers, total_sram_area_mm2, total_sram_bytes
from repro.arch.technology import ORIN_NX, TECH_32NM


# ---------------------------------------------------------------------------
# Technology
# ---------------------------------------------------------------------------
def test_technology_cycle_time():
    assert TECH_32NM.cycle_time_s == pytest.approx(1e-9)
    assert TECH_32NM.mac_energy_j > 0
    assert ORIN_NX.peak_flops == pytest.approx(3.7e12)
    assert ORIN_NX.dram_bandwidth_bytes == pytest.approx(102.4e9)


# ---------------------------------------------------------------------------
# DRAM
# ---------------------------------------------------------------------------
def test_dram_validation():
    with pytest.raises(ValueError):
        DRAMModel("bad", channels=0, peak_bandwidth_bytes=1e9, efficiency=0.5, energy_per_byte_j=1e-12)
    with pytest.raises(ValueError):
        DRAMModel("bad", channels=1, peak_bandwidth_bytes=1e9, efficiency=1.5, energy_per_byte_j=1e-12)


def test_dram_transfer_time_and_energy():
    dram = LPDDR3_4CH
    time = dram.transfer_time_s(dram.sustained_bandwidth_bytes)
    assert time == pytest.approx(1.0)
    assert dram.transfer_energy_j(1e6) == pytest.approx(1e6 * dram.energy_per_byte_j)
    with pytest.raises(ValueError):
        dram.transfer_time_s(-1)


def test_dram_burst_rounding():
    dram = LPDDR3_4CH
    assert dram.round_burst(0) == 0
    assert dram.round_burst(1) == dram.burst_bytes
    assert dram.round_burst(dram.burst_bytes) == dram.burst_bytes


def test_dram_required_bandwidth():
    dram = ORIN_NX_DRAM
    assert dram.required_bandwidth(1e9, 90.0) == pytest.approx(90e9)
    with pytest.raises(ValueError):
        dram.required_bandwidth(1e9, 0.0)


@settings(max_examples=20, deadline=None)
@given(num_bytes=st.floats(min_value=0, max_value=1e10))
def test_dram_time_and_energy_are_linear(num_bytes):
    dram = LPDDR3_4CH
    assert dram.transfer_time_s(2 * num_bytes) == pytest.approx(2 * dram.transfer_time_s(num_bytes))
    assert dram.transfer_energy_j(2 * num_bytes) == pytest.approx(2 * dram.transfer_energy_j(num_bytes))


# ---------------------------------------------------------------------------
# SRAM
# ---------------------------------------------------------------------------
def test_sram_validation():
    with pytest.raises(ValueError):
        SRAMModel("bad", size_bytes=0)
    with pytest.raises(ValueError):
        SRAMModel("bad", size_bytes=1024, banks=0)


def test_default_buffers_match_paper():
    buffers = default_buffers()
    assert total_sram_bytes(buffers) == 355 * 1024
    assert buffers["input_buffer"].size_kb == 16
    assert buffers["codebook_buffer"].size_kb == 250
    # Table I: 355 KB of SRAM occupies 1.95 mm^2.
    assert total_sram_area_mm2(buffers) == pytest.approx(1.95, rel=1e-6)


def test_sram_energy_scales_with_bank_size():
    small = SRAMModel("small", size_bytes=16 * 1024)
    large = SRAMModel("large", size_bytes=256 * 1024)
    assert large.energy_per_byte_j > small.energy_per_byte_j
    assert small.access_energy_j(100) > 0
    with pytest.raises(ValueError):
        small.access_energy_j(-1)


# ---------------------------------------------------------------------------
# Area (Table I)
# ---------------------------------------------------------------------------
def test_table1_total_area_matches_paper():
    breakdown = AreaModel().table1()
    assert breakdown.total_mm2 == pytest.approx(5.37, abs=0.05)
    components = breakdown.components
    assert components["voxel_sorting_unit"] == pytest.approx(0.06, abs=1e-6)
    assert components["hierarchical_filtering_unit"] == pytest.approx(0.79, abs=1e-6)
    assert components["sorting_unit"] == pytest.approx(0.04, abs=1e-6)
    assert components["rendering_unit"] == pytest.approx(2.53, abs=1e-6)
    assert components["sram"] == pytest.approx(1.95, abs=1e-6)


def test_total_area_comparable_to_gscore():
    total = AreaModel().table1().total_mm2
    assert abs(total - GSCORE_AREA_MM2) / GSCORE_AREA_MM2 < 0.1


def test_area_scales_with_unit_counts():
    model = AreaModel()
    base = model.breakdown().total_mm2
    more_hfus = model.breakdown(num_hfu=8).total_mm2
    more_cfus = model.breakdown(cfus_per_hfu=8).total_mm2
    assert more_hfus > base
    assert more_cfus > base
    with pytest.raises(ValueError):
        model.breakdown(num_hfu=0)


def test_area_rows_include_total():
    rows = AreaModel().table1().as_rows()
    assert rows[-1][0] == "total"
    assert rows[-1][1] == pytest.approx(AreaModel().table1().total_mm2)
