"""Tests for the accelerator, GSCore and GPU performance/energy models."""

import numpy as np
import pytest

from repro.arch.accelerator import AcceleratorConfig, PerformanceReport, StreamingGSAccelerator
from repro.arch.gpu import OrinNXModel, gpu_flops
from repro.arch.gscore import GSCoreModel
from repro.arch.units import (
    BitonicSortingUnit,
    HierarchicalFilteringUnit,
    RenderingUnitArray,
    VoxelSortingUnit,
)
from tests.arch.test_workload_traffic import make_workload


@pytest.fixture(scope="module")
def workload():
    return make_workload()


# ---------------------------------------------------------------------------
# Units
# ---------------------------------------------------------------------------
def test_vsu_cycles_scale_with_groups():
    vsu = VoxelSortingUnit()
    assert vsu.cycles(100, 10, 20) < vsu.cycles(200, 10, 20)
    assert vsu.energy_j(100, 10, 20) > 0


def test_hfu_cycles_and_energy():
    hfu = HierarchicalFilteringUnit(num_cfu=4, num_ffu=1)
    assert hfu.coarse_cycles(1000) == pytest.approx(250)
    assert hfu.fine_cycles(1000) == pytest.approx(2000)
    assert hfu.cycles(1000, 100) == pytest.approx(max(250, 200))
    assert hfu.energy_j(1000, 100) > 0


def test_hfu_more_cfus_reduce_coarse_time():
    few = HierarchicalFilteringUnit(num_cfu=1)
    many = HierarchicalFilteringUnit(num_cfu=4)
    assert many.coarse_cycles(10_000) < few.coarse_cycles(10_000)


def test_bitonic_unit_cycles():
    sorter = BitonicSortingUnit()
    assert sorter.cycles_for_list(1) == 0.0
    assert sorter.cycles_for_list(64) > sorter.cycles_for_list(16)
    assert sorter.cycles(10, 64) == pytest.approx(10 * sorter.cycles_for_list(64))
    assert sorter.energy_j(10, 1) == 0.0
    assert sorter.energy_j(10, 64) > 0


def test_render_array_throughput():
    renderer = RenderingUnitArray(num_units=64)
    assert renderer.cycles(64_000) == pytest.approx(64_000 / (64 * renderer.fragments_per_unit_per_cycle))
    assert renderer.energy_j(1000) > 0


# ---------------------------------------------------------------------------
# Accelerator configuration
# ---------------------------------------------------------------------------
def test_config_validation_and_variants():
    with pytest.raises(ValueError):
        AcceleratorConfig(num_hfu=0)
    assert AcceleratorConfig.variant("streaminggs").use_coarse_filter
    assert not AcceleratorConfig.variant("wo_cgf").use_coarse_filter
    assert AcceleratorConfig.variant("wo_cgf").use_vq
    wo_both = AcceleratorConfig.variant("wo_vq_cgf")
    assert not wo_both.use_vq and not wo_both.use_coarse_filter
    with pytest.raises(KeyError):
        AcceleratorConfig.variant("unknown")


def test_paper_default_area(workload):
    accelerator = StreamingGSAccelerator(AcceleratorConfig.paper_default())
    assert accelerator.area_mm2() == pytest.approx(5.37, abs=0.05)


# ---------------------------------------------------------------------------
# Performance reports
# ---------------------------------------------------------------------------
def test_report_fps_and_ratios(workload):
    gpu = OrinNXModel().evaluate(workload)
    accel = StreamingGSAccelerator().evaluate(workload)
    assert isinstance(gpu, PerformanceReport) and isinstance(accel, PerformanceReport)
    assert gpu.fps == pytest.approx(1.0 / gpu.frame_time_s)
    assert accel.speedup_over(gpu) > 1.0
    assert accel.energy_saving_over(gpu) > 1.0
    assert gpu.power_w > 0


def test_accelerator_report_structure(workload):
    report = StreamingGSAccelerator().evaluate(workload)
    assert set(report.stage_cycles) == {"vsu", "hfu", "sorting", "rendering"}
    assert set(report.energy_breakdown) == {
        "vsu",
        "hfu",
        "sorting",
        "rendering",
        "sram",
        "dram",
        "static",
    }
    assert report.energy_per_frame_j == pytest.approx(sum(report.energy_breakdown.values()))
    assert report.dram_bytes > 0


def test_accelerator_faster_and_more_efficient_than_gscore(workload):
    """The paper's headline ordering: STREAMINGGS > GSCore > GPU."""
    gpu = OrinNXModel().evaluate(workload)
    gscore = GSCoreModel().evaluate(workload)
    accel = StreamingGSAccelerator().evaluate(workload)
    assert accel.frame_time_s < gscore.frame_time_s < gpu.frame_time_s
    assert accel.energy_per_frame_j < gscore.energy_per_frame_j < gpu.energy_per_frame_j


def test_ablations_are_slower_than_full_design(workload):
    full = StreamingGSAccelerator(AcceleratorConfig.variant("streaminggs")).evaluate(workload)
    wo_cgf = StreamingGSAccelerator(AcceleratorConfig.variant("wo_cgf")).evaluate(workload)
    wo_vq_cgf = StreamingGSAccelerator(AcceleratorConfig.variant("wo_vq_cgf")).evaluate(workload)
    assert full.frame_time_s <= wo_cgf.frame_time_s
    assert wo_cgf.frame_time_s <= wo_vq_cgf.frame_time_s + 1e-12
    # VQ is primarily an energy optimisation (Sec. V-C).
    assert wo_vq_cgf.energy_per_frame_j > wo_cgf.energy_per_frame_j


def test_accelerator_traffic_drops_with_vq(workload):
    full = StreamingGSAccelerator(AcceleratorConfig.variant("streaminggs"))
    no_vq = StreamingGSAccelerator(AcceleratorConfig.variant("wo_vq_cgf"))
    assert full.traffic(workload).total_bytes < no_vq.traffic(workload).total_bytes


def test_more_cfus_never_slow_down(workload):
    reports = [
        StreamingGSAccelerator(AcceleratorConfig(cfus_per_hfu=n)).evaluate(workload).frame_time_s
        for n in (1, 2, 4)
    ]
    assert reports[0] >= reports[1] >= reports[2]


def test_gscore_traffic_between_streaming_and_gpu(workload):
    from repro.arch.traffic import streaming_traffic, tile_centric_traffic

    gscore_bytes = GSCoreModel().traffic_bytes(workload)
    assert streaming_traffic(workload).total_bytes < gscore_bytes
    assert gscore_bytes < tile_centric_traffic(workload).total_bytes * 1.01


# ---------------------------------------------------------------------------
# GPU model
# ---------------------------------------------------------------------------
def test_gpu_flops_positive(workload):
    flops = gpu_flops(workload)
    assert flops.projection_flops > 0
    assert flops.sorting_flops > 0
    assert flops.rendering_flops > 0
    assert flops.total_flops == pytest.approx(
        flops.projection_flops + flops.sorting_flops + flops.rendering_flops
    )


def test_gpu_not_real_time(workload):
    """Fig. 3's conclusion: a mobile GPU is far below the 90 FPS target."""
    assert OrinNXModel().fps(workload) < 45.0


def test_gpu_required_bandwidth_matches_traffic(workload):
    from repro.arch.traffic import tile_centric_traffic

    gpu = OrinNXModel()
    assert gpu.required_bandwidth(workload, fps=90.0) == pytest.approx(
        tile_centric_traffic(workload).total_bytes * 90.0
    )


def test_accelerator_hits_real_time(workload):
    """The full design should comfortably exceed the 90 FPS requirement."""
    report = StreamingGSAccelerator().evaluate(workload)
    assert report.fps > 90.0
