"""Tests for k-means and the feature codebooks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.codebook import Codebook, CodebookSpec
from repro.compression.kmeans import kmeans


def clustered_vectors(num_clusters=5, per_cluster=50, dim=3, seed=0, spread=0.05):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-1, 1, size=(num_clusters, dim))
    points = centers[np.repeat(np.arange(num_clusters), per_cluster)]
    return points + rng.normal(0, spread, size=points.shape), centers


def test_kmeans_input_validation():
    with pytest.raises(ValueError):
        kmeans(np.zeros((0, 3)), 4)
    with pytest.raises(ValueError):
        kmeans(np.zeros((10, 3)), 0)
    with pytest.raises(ValueError):
        kmeans(np.zeros(10), 2)


def test_kmeans_recovers_well_separated_clusters():
    vectors, centers = clustered_vectors(num_clusters=4, spread=0.02, seed=1)
    result = kmeans(vectors, 4, seed=1)
    # Every true centre should be close to some learned centroid.
    for center in centers:
        distances = np.linalg.norm(result.centroids - center, axis=1)
        assert distances.min() < 0.1


def test_kmeans_assignments_in_range():
    vectors, _ = clustered_vectors()
    result = kmeans(vectors, 8, seed=0)
    assert result.assignments.shape == (len(vectors),)
    assert result.assignments.min() >= 0
    assert result.assignments.max() < 8


def test_kmeans_k_not_less_than_n():
    vectors = np.random.default_rng(0).normal(size=(5, 2))
    result = kmeans(vectors, 16)
    assert result.centroids.shape == (16, 2)
    assert result.inertia == 0.0
    np.testing.assert_allclose(result.centroids[:5], vectors)


def test_kmeans_inertia_decreases_with_more_clusters():
    vectors, _ = clustered_vectors(num_clusters=6, per_cluster=60, seed=2)
    small = kmeans(vectors, 2, seed=0).inertia
    large = kmeans(vectors, 12, seed=0).inertia
    assert large < small


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 500), k=st.integers(1, 16))
def test_kmeans_assignment_is_nearest_centroid(seed, k):
    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(64, 3))
    result = kmeans(vectors, k, seed=seed)
    d = np.linalg.norm(vectors[:, None, :] - result.centroids[None, :, :], axis=2)
    np.testing.assert_array_equal(result.assignments, np.argmin(d, axis=1))


def test_codebook_spec_bits_and_storage():
    spec = CodebookSpec(name="scale", num_entries=4096, vector_dim=3)
    assert spec.index_bits == 12
    assert spec.index_bytes == 1.5
    assert spec.storage_bytes == 4096 * 3 * 2
    small = CodebookSpec(name="sh", num_entries=512, vector_dim=45)
    assert small.index_bits == 9


def test_codebook_train_encode_decode_roundtrip():
    vectors, _ = clustered_vectors(num_clusters=8, per_cluster=40, spread=0.01, seed=3)
    spec = CodebookSpec(name="test", num_entries=8, vector_dim=3)
    codebook = Codebook.train(spec, vectors, seed=3)
    indices = codebook.encode(vectors)
    decoded = codebook.decode(indices)
    assert decoded.shape == vectors.shape
    assert np.mean(np.linalg.norm(decoded - vectors, axis=1)) < 0.1


def test_codebook_shape_validation():
    spec = CodebookSpec(name="test", num_entries=4, vector_dim=3)
    with pytest.raises(ValueError):
        Codebook(spec, np.zeros((4, 2)))
    codebook = Codebook(spec, np.zeros((4, 3)))
    with pytest.raises(ValueError):
        codebook.encode(np.zeros((5, 2)))
    with pytest.raises(ValueError):
        codebook.decode(np.array([7]))


def test_codebook_quantization_error_nonnegative():
    vectors, _ = clustered_vectors()
    spec = CodebookSpec(name="test", num_entries=16, vector_dim=3)
    codebook = Codebook.train(spec, vectors)
    assert codebook.quantization_error(vectors) >= 0.0
