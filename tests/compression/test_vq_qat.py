"""Tests for the vector quantizer and quantization-aware fine-tuning."""

import numpy as np
import pytest

from repro.compression.quantization_aware import quantization_aware_finetune
from repro.compression.vq import DEFAULT_VQ_SPECS, VectorQuantizer
from repro.gaussians.metrics import psnr
from repro.gaussians.rasterizer import TileRasterizer
from tests.conftest import make_camera, make_model


def small_quantizer():
    """Codebook sizes shrunk so training on a small model is meaningful."""
    from repro.compression.codebook import CodebookSpec

    specs = (
        CodebookSpec(name="scale", num_entries=32, vector_dim=3),
        CodebookSpec(name="rotation", num_entries=32, vector_dim=4),
        CodebookSpec(name="dc", num_entries=32, vector_dim=3),
        CodebookSpec(name="sh", num_entries=16, vector_dim=45),
    )
    return VectorQuantizer(specs=specs, kmeans_iterations=6)


def test_default_specs_match_paper():
    by_name = {spec.name: spec for spec in DEFAULT_VQ_SPECS}
    assert by_name["scale"].num_entries == 4096
    assert by_name["rotation"].num_entries == 4096
    assert by_name["dc"].num_entries == 4096
    assert by_name["sh"].num_entries == 512
    assert by_name["sh"].vector_dim == 45


def test_encode_requires_fit(small_model):
    quantizer = VectorQuantizer()
    with pytest.raises(RuntimeError):
        quantizer.encode(small_model)


def test_fit_encode_decode_preserves_first_half(small_model):
    quantizer = small_quantizer().fit(small_model)
    roundtrip = quantizer.roundtrip(small_model)
    np.testing.assert_array_equal(roundtrip.positions, small_model.positions)
    assert len(roundtrip) == len(small_model)
    assert np.all(roundtrip.scales > 0)


def test_quantized_subset(small_model):
    quantizer = small_quantizer().fit(small_model)
    quantized = quantizer.encode(small_model)
    subset = quantized.subset(np.array([0, 5, 9]))
    assert subset.num_gaussians == 3
    assert len(subset.opacities) == 3


def test_decode_size_mismatch(small_model, tiny_model):
    quantizer = small_quantizer().fit(small_model)
    quantized = quantizer.encode(small_model)
    with pytest.raises(ValueError):
        quantizer.decode(quantized, tiny_model)


def test_compressed_bytes_and_reduction():
    quantizer = VectorQuantizer()
    compressed = quantizer.compressed_bytes_per_gaussian()
    raw = quantizer.raw_bytes_per_gaussian()
    assert raw == 220.0
    assert compressed < raw
    reduction = quantizer.traffic_reduction()
    # The paper reports 92.3 % traffic reduction for the second half.
    assert 0.85 < reduction < 0.99


def test_codebook_storage_fits_on_chip_budget():
    quantizer = VectorQuantizer()
    # The paper's codebook buffer is 250 KB.
    assert quantizer.codebook_storage_bytes() <= 250 * 1024


def test_quantization_keeps_render_quality(small_model):
    camera = make_camera(width=48, height=48)
    rasterizer = TileRasterizer()
    reference = rasterizer.render(small_model, camera).image
    quantizer = small_quantizer().fit(small_model)
    quantized_image = rasterizer.render(quantizer.roundtrip(small_model), camera).image
    assert psnr(reference, quantized_image) > 20.0


def test_qat_reduces_quantization_error(small_model):
    quantizer = small_quantizer().fit(small_model)
    result = quantization_aware_finetune(small_model, quantizer, iterations=4)
    history = result.quantization_error_history
    assert len(history) == 4
    assert history[-1] <= history[0]


def test_qat_improves_or_preserves_render_quality():
    model = make_model(300, scale=0.12, seed=13)
    camera = make_camera(width=40, height=40)
    rasterizer = TileRasterizer()
    ground_truth = rasterizer.render(model, camera).image
    quantizer = small_quantizer().fit(model)
    result = quantization_aware_finetune(
        model,
        quantizer,
        iterations=4,
        camera=camera,
        ground_truth=ground_truth,
        rasterizer=rasterizer,
    )
    assert np.isfinite(result.psnr_before)
    assert result.psnr_after >= result.psnr_before - 0.5


def test_qat_validation(small_model):
    quantizer = small_quantizer().fit(small_model)
    with pytest.raises(ValueError):
        quantization_aware_finetune(small_model, quantizer, iterations=0)
    with pytest.raises(RuntimeError):
        quantization_aware_finetune(small_model, VectorQuantizer(), iterations=1)
