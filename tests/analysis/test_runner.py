"""Tests for the experiment registry / CLI runner."""

import pytest

from repro.analysis.runner import EXPERIMENTS, list_experiments, main, run_experiment


def test_registry_covers_every_paper_artifact():
    assert set(list_experiments()) == {
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "tab1",
        "tab2",
        "fig11",
        "fig12",
        "fig13",
        "claims",
        "engine",
    }
    for experiment in EXPERIMENTS.values():
        assert experiment.description


def test_run_experiment_unknown():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_run_tab1_formats():
    text = run_experiment("tab1")
    assert "Table I" in text
    assert "total" in text


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out and "tab2" in out


def test_cli_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig3" in capsys.readouterr().out


def test_cli_runs_named_experiment(capsys):
    assert main(["tab1"]) == 0
    assert "Table I" in capsys.readouterr().out
