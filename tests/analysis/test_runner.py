"""Tests for the experiment registry / CLI runner."""

import json

import pytest

from repro.analysis.runner import (
    EXPERIMENTS,
    list_experiments,
    main,
    run_experiment,
    run_experiment_result,
)
from repro.api.result import ExperimentResult


def test_registry_covers_every_paper_artifact():
    assert set(list_experiments()) == {
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "tab1",
        "tab2",
        "fig11",
        "fig12",
        "fig13",
        "claims",
        "engine",
        "trajectory",
    }
    for experiment in EXPERIMENTS.values():
        assert experiment.description


def test_run_experiment_unknown():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_run_tab1_formats():
    text = run_experiment("tab1")
    assert "Table I" in text
    assert "total" in text


def test_run_experiment_result_is_typed():
    result = run_experiment_result("tab1")
    assert isinstance(result, ExperimentResult)
    assert result.name == "tab1"
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out and "tab2" in out


def test_cli_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig3" in capsys.readouterr().out


def test_cli_runs_named_experiment(capsys):
    assert main(["tab1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_unknown_experiment_is_clean_error(capsys):
    assert main(["fig99"]) == 2
    captured = capsys.readouterr()
    assert "unknown experiment" in captured.err
    assert "fig99" in captured.err
    assert captured.out == ""


def test_cli_unknown_mixed_with_known_runs_nothing(capsys):
    assert main(["tab1", "fig99"]) == 2
    captured = capsys.readouterr()
    assert "fig99" in captured.err
    assert "Table I" not in captured.out


def test_cli_json_output(capsys):
    assert main(["tab1", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["name"] == "tab1"
    assert data["metrics"]["total_mm2"] == pytest.approx(5.37, abs=0.01)
    assert "Table I" in data["text"]


def test_cli_json_multiple_experiments_is_json_lines(capsys):
    assert main(["tab1", "engine", "--json"]) == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    assert [json.loads(line)["name"] for line in lines] == ["tab1", "engine"]


def test_route_options_global():
    from repro.analysis.runner import route_options

    routed = route_options({"scenes": ["lego"]}, ["fig2", "fig3"])
    assert routed == {"fig2": {"scenes": ["lego"]}, "fig3": {"scenes": ["lego"]}}


def test_route_options_per_experiment():
    from repro.analysis.runner import route_options

    routed = route_options(
        {"fig12": {"voxel_sizes": [1.0]}}, ["fig12", "tab1"]
    )
    assert routed == {"fig12": {"voxel_sizes": [1.0]}, "tab1": {}}


def test_route_options_empty_is_global():
    from repro.analysis.runner import route_options

    assert route_options({}, ["tab1"]) == {"tab1": {}}


def test_cli_scheduled_multi_experiment(capsys):
    # Two cheap experiments across a 2-worker pool: results must print in
    # request order with the scheduler telemetry on stderr.
    code = main(
        [
            "tab1",
            "claims",
            "--jobs",
            "2",
            "--json",
            "--options",
            '{"claims": {"scene": "lego"}}',
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    lines = [line for line in captured.out.splitlines() if line]
    assert [json.loads(line)["name"] for line in lines] == ["tab1", "claims"]
    assert "[scheduler] tab1:" in captured.err
    assert "[scheduler] claims:" in captured.err
    assert "worker_reuse=" in captured.err


def test_cli_scheduled_rejected_options_is_clean_error(capsys):
    code = main(
        ["tab1", "claims", "--jobs", "2", "--options", '{"tab1": {"bogus": 1}}']
    )
    captured = capsys.readouterr()
    assert code == 2
    assert "rejected --options" in captured.err


def test_cli_single_experiment_keeps_sweep_level_jobs(capsys):
    code = main(
        [
            "fig13",
            "--jobs",
            "2",
            "--options",
            '{"scene": "lego", "cfus": [1, 2, 3, 4], "ffus": [1, 2, 3, 4], '
            '"resolution_scale": 0.5}',
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "Fig. 13" in captured.out
    assert "[execution] fig13:" in captured.err
    assert "sub_shards=" in captured.err


def test_cli_options_routed_to_unselected_experiment_is_clean_error(capsys):
    code = main(["fig12", "--options", '{"fig13": {"cfus": [1]}}'])
    captured = capsys.readouterr()
    assert code == 2
    assert "not" in captured.err and "fig13" in captured.err
    assert captured.out == ""


def test_cli_telemetry_json_dump(capsys, tmp_path):
    path = tmp_path / "telemetry.json"
    code = main(
        [
            "fig12",
            "--jobs",
            "2",
            "--telemetry-json",
            str(path),
            "--options",
            '{"scene": "lego", "voxel_sizes": [0.4, 0.8], "resolution_scale": 0.5}',
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert f"[telemetry] wrote {path}" in captured.err
    payload = json.loads(path.read_text())
    execution = payload["experiments"]["fig12"]
    assert execution["specs"] == 2
    assert execution["jobs"] == 2
    assert "split_threshold" in execution
    assert payload["scheduler"] is None
    assert payload["session"]["service"]["requests_served"] >= 0
    assert payload["store"] is None


def test_cli_telemetry_json_with_scheduler(capsys, tmp_path):
    path = tmp_path / "telemetry.json"
    code = main(
        [
            "fig12",
            "fig13",
            "--jobs",
            "2",
            "--telemetry-json",
            str(path),
            "--cache-dir",
            str(tmp_path / "cache"),
            "--options",
            '{"fig12": {"scene": "lego", "voxel_sizes": [0.4], "resolution_scale": 0.5},'
            ' "fig13": {"scene": "lego", "cfus": [1], "ffus": [1], "resolution_scale": 0.5}}',
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    payload = json.loads(path.read_text())
    assert payload["scheduler"]["experiments"] == 2
    assert payload["experiments"]["fig12"]["elapsed_s"] > 0
    assert payload["experiments"]["fig13"]["elapsed_s"] > 0
    assert payload["session"] is None
    assert payload["store"]["entries"] >= 0
