"""Tests for the experiment registry / CLI runner."""

import json

import pytest

from repro.analysis.runner import (
    EXPERIMENTS,
    list_experiments,
    main,
    run_experiment,
    run_experiment_result,
)
from repro.api.result import ExperimentResult


def test_registry_covers_every_paper_artifact():
    assert set(list_experiments()) == {
        "fig2",
        "fig3",
        "fig4",
        "fig7",
        "tab1",
        "tab2",
        "fig11",
        "fig12",
        "fig13",
        "claims",
        "engine",
    }
    for experiment in EXPERIMENTS.values():
        assert experiment.description


def test_run_experiment_unknown():
    with pytest.raises(KeyError):
        run_experiment("fig99")


def test_run_tab1_formats():
    text = run_experiment("tab1")
    assert "Table I" in text
    assert "total" in text


def test_run_experiment_result_is_typed():
    result = run_experiment_result("tab1")
    assert isinstance(result, ExperimentResult)
    assert result.name == "tab1"
    restored = ExperimentResult.from_json(result.to_json())
    assert restored.to_dict() == result.to_dict()


def test_cli_list(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig11" in out and "tab2" in out


def test_cli_no_args_lists(capsys):
    assert main([]) == 0
    assert "fig3" in capsys.readouterr().out


def test_cli_runs_named_experiment(capsys):
    assert main(["tab1"]) == 0
    assert "Table I" in capsys.readouterr().out


def test_cli_unknown_experiment_is_clean_error(capsys):
    assert main(["fig99"]) == 2
    captured = capsys.readouterr()
    assert "unknown experiment" in captured.err
    assert "fig99" in captured.err
    assert captured.out == ""


def test_cli_unknown_mixed_with_known_runs_nothing(capsys):
    assert main(["tab1", "fig99"]) == 2
    captured = capsys.readouterr()
    assert "fig99" in captured.err
    assert "Table I" not in captured.out


def test_cli_json_output(capsys):
    assert main(["tab1", "--json"]) == 0
    out = capsys.readouterr().out
    data = json.loads(out)
    assert data["name"] == "tab1"
    assert data["metrics"]["total_mm2"] == pytest.approx(5.37, abs=0.01)
    assert "Table I" in data["text"]


def test_cli_json_multiple_experiments_is_json_lines(capsys):
    assert main(["tab1", "engine", "--json"]) == 0
    lines = [line for line in capsys.readouterr().out.splitlines() if line]
    assert [json.loads(line)["name"] for line in lines] == ["tab1", "engine"]
