"""Golden parity: sensitivity figures via the parallel executor match serial.

``run_fig12`` / ``run_fig13`` are pinned to the serial path: the same grid
evaluated through a parallel session (``jobs=2``) must produce tables that
are byte-identical, independent of worker scheduling.
"""

from repro.analysis.sensitivity import run_fig12, run_fig13
from repro.api import ResultStore, Session

#: Reduced grid + resolution keeps the parity runs cheap.
SCALE = 0.5


class TestFig12Parity:
    def test_parallel_table_is_byte_identical(self):
        kwargs = dict(scene="lego", voxel_sizes=(0.4, 0.8), resolution_scale=SCALE)
        serial = run_fig12(session=Session(), **kwargs)
        parallel = run_fig12(session=Session(jobs=2), **kwargs)
        assert parallel.format() == serial.format()
        assert parallel.energy_savings == serial.energy_savings
        assert parallel.psnr == serial.psnr

    def test_warm_store_reproduces_the_table(self, tmp_path):
        kwargs = dict(scene="lego", voxel_sizes=(0.4, 0.8), resolution_scale=SCALE)
        store = ResultStore(tmp_path / "cache")
        cold = run_fig12(session=Session(store=store), **kwargs)
        warm_session = Session(store=store)
        warm = run_fig12(session=warm_session, **kwargs)
        assert warm.format() == cold.format()
        assert warm_session.service.requests_served == 0


class TestFig13Parity:
    def test_parallel_table_is_byte_identical(self):
        kwargs = dict(scene="lego", cfus=(1, 2), ffus=(1, 2), resolution_scale=SCALE)
        serial = run_fig13(session=Session(), **kwargs)
        parallel = run_fig13(session=Session(jobs=2), **kwargs)
        assert parallel.format() == serial.format()
        assert parallel.speedup == serial.speedup
        assert parallel.area_mm2 == serial.area_mm2
