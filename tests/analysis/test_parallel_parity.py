"""Golden parity: sensitivity figures via the parallel executor match serial.

``run_fig12`` / ``run_fig13`` are pinned to the serial path: the same grid
evaluated through a parallel session (``jobs=2``) must produce tables that
are byte-identical, independent of worker scheduling.
"""

from repro.analysis.sensitivity import run_fig12, run_fig13
from repro.api import ExperimentSpec, ResultStore, Session
from repro.api.spec import sweep

#: Reduced grid + resolution keeps the parity runs cheap.
SCALE = 0.5


class TestFig12Parity:
    def test_parallel_table_is_byte_identical(self):
        kwargs = dict(scene="lego", voxel_sizes=(0.4, 0.8), resolution_scale=SCALE)
        serial = run_fig12(session=Session(), **kwargs)
        parallel = run_fig12(session=Session(jobs=2), **kwargs)
        assert parallel.format() == serial.format()
        assert parallel.energy_savings == serial.energy_savings
        assert parallel.psnr == serial.psnr

    def test_warm_store_reproduces_the_table(self, tmp_path):
        kwargs = dict(scene="lego", voxel_sizes=(0.4, 0.8), resolution_scale=SCALE)
        store = ResultStore(tmp_path / "cache")
        cold = run_fig12(session=Session(store=store), **kwargs)
        warm_session = Session(store=store)
        warm = run_fig12(session=warm_session, **kwargs)
        assert warm.format() == cold.format()
        assert warm_session.service.requests_served == 0


class TestFig13Parity:
    def test_parallel_table_is_byte_identical(self):
        kwargs = dict(scene="lego", cfus=(1, 2), ffus=(1, 2), resolution_scale=SCALE)
        serial = run_fig13(session=Session(), **kwargs)
        parallel = run_fig13(session=Session(jobs=2), **kwargs)
        assert parallel.format() == serial.format()
        assert parallel.speedup == serial.speedup
        assert parallel.area_mm2 == serial.area_mm2


class TestStreamingKernelParity:
    """The sensitivity tables are pinned across streaming render paths.

    Fig. 12 / Fig. 13 tables produced with the vectorized streaming fast
    path (the default) must be byte-identical to the voxel-at-a-time
    reference loop — the acceptance bar that lets the fast path be the
    default without moving any published number.
    """

    def test_fig12_table_is_byte_identical_across_kernels(self):
        tables = {}
        for kernel in ("reference", "vectorized"):
            base = ExperimentSpec(
                scene="lego",
                arch="streaminggs",
                resolution_scale=SCALE,
                config={"streaming_kernel": kernel},
            )
            result = Session().run_sweep(
                sweep(base, voxel_size=[0.4, 0.8]), swept=["voxel_size"]
            )
            tables[kernel] = result.format()
        assert tables["vectorized"] == tables["reference"]

    def test_fig13_table_is_byte_identical_across_kernels(self):
        tables = {}
        for kernel in ("reference", "vectorized"):
            base = ExperimentSpec(
                scene="lego",
                arch="streaminggs",
                resolution_scale=SCALE,
                config={"streaming_kernel": kernel},
            )
            result = Session().run_sweep(
                sweep(base, cfus_per_hfu=[1, 2], ffus_per_hfu=[1, 2]),
                swept=["cfus_per_hfu", "ffus_per_hfu"],
            )
            tables[kernel] = result.format()
        assert tables["vectorized"] == tables["reference"]


class TestSingleContextFanOut:
    """The fig13 shape: one scene context, a large cheap grid.

    Before shard-splitting this collapsed to one shard and ran on one
    worker; now it must split into sub-shards over a shared broadcast
    context — and still produce the exact serial table.
    """

    def test_split_grid_fans_out_and_stays_byte_identical(self):
        kwargs = dict(
            scene="lego", cfus=(1, 2, 3, 4, 5, 6, 7, 8), ffus=(1, 2, 3, 4),
            resolution_scale=SCALE,
        )
        serial_session = Session()
        serial = run_fig13(session=serial_session, **kwargs)
        assert serial_session.last_execution.specs == 32
        with Session(jobs=2) as parallel_session:
            parallel = run_fig13(session=parallel_session, **kwargs)
            report = parallel_session.last_execution
        # One scene context, >= 32 specs, fanned out over > 1 worker ...
        assert report.specs == 32
        assert report.shards == 1
        assert report.sub_shards >= 2
        assert report.workers > 1
        assert report.broadcast_contexts == 1
        # ... with the table byte-identical to the serial path.
        assert parallel.format() == serial.format()
        assert parallel.speedup == serial.speedup
        assert parallel.area_mm2 == serial.area_mm2
