"""Tests for the experiment result formatting helpers."""

from repro.analysis.report import format_series, format_table


def test_format_table_basic():
    text = format_table(
        ["scene", "value"],
        [["lego", 1.2345], ["truck", 10000.0]],
        title="demo",
    )
    lines = text.splitlines()
    assert lines[0] == "demo"
    assert "scene" in lines[1] and "value" in lines[1]
    assert any("lego" in line and "1.23" in line for line in lines)
    assert any("truck" in line for line in lines)


def test_format_table_alignment():
    text = format_table(["a", "b"], [["x", 1], ["longer", 2]])
    rows = text.splitlines()[2:]
    assert len(set(len(r.rstrip()) > 0 for r in rows)) == 1


def test_format_table_small_and_zero_values():
    text = format_table(["v"], [[0.0], [0.0001], [123456.0]])
    assert "0" in text
    assert "0.0001" in text or "1e-04" in text


def test_format_series():
    text = format_series(
        {"energy": [1.0, 2.0], "psnr": [20.0, 21.0]},
        "voxel",
        [0.5, 1.0],
        title="sweep",
    )
    lines = text.splitlines()
    assert lines[0] == "sweep"
    assert "voxel" in lines[1] and "energy" in lines[1] and "psnr" in lines[1]
    assert len(lines) == 2 + 1 + 2  # title + header + rule + 2 rows
