"""End-to-end smoke tests of the experiment harness.

These tests run the same code paths as the benchmark suite, but on a single
down-scaled scene so they complete in a few seconds.  The full experiments
(all scenes, paper-scale statistics) are exercised by ``benchmarks/``.
"""

import numpy as np
import pytest

from repro.analysis.characterization import run_fig2, run_fig3, run_fig4
from repro.analysis.claims import run_supporting_claims
from repro.analysis.context import clear_context_cache, get_scene_context
from repro.analysis.performance import run_fig11
from repro.analysis.quality import PAPER_TABLE2, run_table2
from repro.analysis.sensitivity import run_fig13

#: A reduced evaluation resolution keeps each context under ~2 seconds.
SCALE = 0.5


@pytest.fixture(scope="module", autouse=True)
def warm_context():
    clear_context_cache()
    yield
    clear_context_cache()


@pytest.fixture(scope="module")
def lego_context():
    return get_scene_context("lego", resolution_scale=SCALE)


def test_context_fields(lego_context):
    context = lego_context
    assert context.scene == "lego"
    assert context.baseline_psnr > 20.0
    assert context.streaming_psnr > 20.0
    assert context.workload.num_gaussians == 340_000
    assert context.ground_truth.shape == context.tile_output.image.shape


def test_context_cache_returns_same_object(lego_context):
    again = get_scene_context("lego", resolution_scale=SCALE)
    assert again is lego_context


def test_context_unknown_scene():
    with pytest.raises(KeyError):
        get_scene_context("not-a-scene")


def test_fig2_single_scene():
    result = run_fig2(scenes=("lego",))
    assert result.scenes == ["lego"]
    shares = [result.stage_fractions[s][0] for s in ("projection", "sorting", "rendering")]
    assert sum(shares) == pytest.approx(1.0)
    assert result.intermediate_fraction > 0.5
    assert "Fig. 2" in result.format()


def test_fig3_single_scene():
    result = run_fig3(scenes=("lego",))
    assert result.measured_fps[0] < 90.0
    assert result.paper_fps[0] == pytest.approx(8.5)
    assert "Fig. 3" in result.format()


def test_fig4_single_scene():
    result = run_fig4(scenes=("lego",))
    assert result.total_gbs[0] > 0
    assert result.total_gbs[0] == pytest.approx(
        sum(result.stage_gbs[s][0] for s in result.stage_gbs), rel=1e-6
    )
    assert "Fig. 4" in result.format()


def test_table2_single_cell():
    result = run_table2(scenes=("lego",), algorithms=("3dgs",))
    assert len(result.rows) == 1
    row = result.rows[0]
    assert row.paper_baseline == PAPER_TABLE2["3dgs"]["lego"][0]
    assert abs(row.measured_baseline - row.paper_baseline) < 2.0
    assert row.measured_ours > 20.0
    assert "Table II" in result.format()


def test_fig11_single_scene():
    result = run_fig11(scenes=("lego",), algorithms=("3dgs",))
    assert result.speedup["3dgs"]["streaminggs"] > result.speedup["3dgs"]["gscore"] > 1.0
    assert result.energy_savings["3dgs"]["streaminggs"] > 1.0
    assert result.streaming_vs_gscore_speedup() > 1.0
    assert "Fig. 11" in result.format()


def test_fig13_small_grid():
    result = run_fig13(scene="lego", cfus=(1, 4), ffus=(1,))
    assert result.value(4, 1) >= result.value(1, 1)
    assert result.area_mm2[4][1] > result.area_mm2[1][1]
    assert "Fig. 13" in result.format()


def test_supporting_claims_lego():
    result = run_supporting_claims(scene="lego")
    assert 0.0 < result.filtering_reduction < 1.0
    assert 0.8 < result.vq_traffic_reduction < 1.0
    assert result.coarse_macs == 55
    assert result.fine_macs == 427
    assert "Supporting claims" in result.format()
